#include "obs/timeseries.h"

#include <chrono>
#include <cmath>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/monitor.h"

namespace p4runpro::obs {

void TimeSeries::push(SimClock::Nanos t_ns, double value) {
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(SeriesSample{t_ns, value});
    return;
  }
  ring_[head_] = SeriesSample{t_ns, value};
  head_ = (head_ + 1) % capacity_;
}

const SeriesSample& TimeSeries::at(std::size_t i) const {
  return ring_[(head_ + i) % ring_.size()];
}

std::vector<SeriesSample> TimeSeries::last_n(std::size_t n) const {
  if (n > ring_.size()) n = ring_.size();
  std::vector<SeriesSample> out;
  out.reserve(n);
  for (std::size_t i = ring_.size() - n; i < ring_.size(); ++i) out.push_back(at(i));
  return out;
}

double TimeSeries::delta(std::size_t n) const {
  if (n == 0 || ring_.size() <= n) return 0.0;
  return newest().value - at(ring_.size() - 1 - n).value;
}

double TimeSeries::rate_per_s() const {
  if (ring_.size() < 2) return 0.0;
  const SeriesSample& oldest = at(0);
  const SeriesSample& latest = newest();
  if (latest.t_ns <= oldest.t_ns) return 0.0;
  return (latest.value - oldest.value) * 1e9 /
         static_cast<double>(latest.t_ns - oldest.t_ns);
}

void TimeSeriesStore::watch_rate(std::string counter_name, AnomalyConfig config) {
  Watch watch;
  watch.name = std::move(counter_name);
  watch.is_rate = true;
  watch.config = config;
  watches_.push_back(std::move(watch));
}

void TimeSeriesStore::watch_value(std::string series_name, AnomalyConfig config) {
  Watch watch;
  watch.name = std::move(series_name);
  watch.is_rate = false;
  watch.config = config;
  watches_.push_back(std::move(watch));
}

TimeSeries& TimeSeriesStore::series_ref(std::string_view name) {
  const auto it = series_.find(name);
  if (it != series_.end()) return it->second;
  return series_.emplace(std::string(name), TimeSeries(config_.capacity))
      .first->second;
}

void TimeSeriesStore::feed_detector(Watch& watch, std::string_view series_name,
                                    double value) {
  if (watch.seen < watch.config.warmup_samples) {
    // Warm-up: seed the EWMA without judging (the first samples define
    // "normal"; judging them would alert on the baseline itself).
    if (watch.seen == 0) {
      watch.mean = value;
      watch.var = 0.0;
    }
    ++watch.seen;
  } else {
    const double std_dev = std::sqrt(watch.var);
    const double denom = std_dev < watch.config.min_std ? watch.config.min_std
                                                        : std_dev;
    const double z = std::fabs(value - watch.mean) / denom;
    if (z >= watch.config.z_threshold) {
      if (watch.armed) {
        watch.armed = false;
        ++anomalies_fired_;
        if (monitor_ != nullptr) {
          monitor_->series_alert(series_name, "anomaly.z_score", value,
                                 watch.mean +
                                     watch.config.z_threshold * denom);
        }
      }
    } else {
      watch.armed = true;
    }
  }
  // The anomalous sample still updates the estimate: the EWMA converges to
  // the new level, |z| falls below the threshold, and the watch re-arms —
  // a sustained step fires exactly once.
  const double d = value - watch.mean;
  watch.mean += watch.config.alpha * d;
  watch.var = (1.0 - watch.config.alpha) *
              (watch.var + watch.config.alpha * d * d);
}

void TimeSeriesStore::sample(const MetricsRegistry& registry, SimClock::Nanos now) {
  const auto wall_start = std::chrono::steady_clock::now();
  ++samples_taken_;

  for (const auto& [name, counter] : registry.counters()) {
    series_ref(name).push(now, static_cast<double>(counter.value()));
  }
  for (const auto& [name, value] : registry.sampled_gauges()) {
    series_ref(name).push(now, value);
  }
  if (config_.histogram_quantiles) {
    for (const auto& [name, h] : registry.histograms()) {
      if (h.count() == 0) continue;  // empty histogram: no quantiles to roll up
      series_ref(name + ".p50").push(now, h.quantile(0.5));
      series_ref(name + ".p90").push(now, h.quantile(0.9));
      series_ref(name + ".p99").push(now, h.quantile(0.99));
    }
  }

  for (Watch& watch : watches_) {
    if (watch.is_rate) {
      const Counter* counter = registry.find_counter(watch.name);
      if (counter == nullptr) continue;
      const double value = static_cast<double>(counter->value());
      if (watch.have_last && now > watch.last_t_ns) {
        const double rate = (value - watch.last_value) * 1e9 /
                            static_cast<double>(now - watch.last_t_ns);
        const std::string rate_name = watch.name + ".rate";
        series_ref(rate_name).push(now, rate);
        feed_detector(watch, rate_name, rate);
      }
      watch.last_value = value;
      watch.last_t_ns = now;
      watch.have_last = true;
    } else {
      const auto it = series_.find(watch.name);
      if (it == series_.end() || it->second.size() == 0) continue;
      const SeriesSample& latest = it->second.newest();
      if (watch.have_last && latest.t_ns == watch.last_t_ns) continue;
      watch.last_t_ns = latest.t_ns;
      watch.have_last = true;
      feed_detector(watch, watch.name, latest.value);
    }
  }

  self_sample_ns_ += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
}

const TimeSeries* TimeSeriesStore::series(std::string_view name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

std::vector<std::string> TimeSeriesStore::series_names() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, s] : series_) {
    (void)s;
    names.push_back(name);
  }
  return names;
}

std::vector<SeriesSample> TimeSeriesStore::last_n(std::string_view name,
                                                  std::size_t n) const {
  const TimeSeries* s = series(name);
  return s == nullptr ? std::vector<SeriesSample>{} : s->last_n(n);
}

double TimeSeriesStore::rate(std::string_view name) const {
  const TimeSeries* s = series(name);
  return s == nullptr ? 0.0 : s->rate_per_s();
}

double TimeSeriesStore::delta(std::string_view name, std::size_t n) const {
  const TimeSeries* s = series(name);
  return s == nullptr ? 0.0 : s->delta(n);
}

void TimeSeriesStore::attach_self_probes(MetricsRegistry& registry) {
  probe_registry_ = &registry;
  registry.register_probe("obs.self.series_samples", this, [this] {
    return static_cast<double>(samples_taken_);
  });
  registry.register_probe("obs.self.series_sample_ns", this, [this] {
    return static_cast<double>(self_sample_ns_);
  });
  registry.register_probe("obs.self.series_count", this, [this] {
    return static_cast<double>(series_.size());
  });
}

void TimeSeriesStore::clear() {
  series_.clear();
  next_due_ns_ = 0;
  samples_taken_ = 0;
  anomalies_fired_ = 0;
  self_sample_ns_ = 0;
  for (Watch& watch : watches_) {
    watch.mean = 0.0;
    watch.var = 0.0;
    watch.seen = 0;
    watch.armed = true;
    watch.have_last = false;
  }
}

TimeSeriesStore::~TimeSeriesStore() {
  if (probe_registry_ != nullptr) probe_registry_->unregister_probes(this);
}

void export_series_jsonl(const TimeSeriesStore& store, std::ostream& out) {
  for (const std::string& name : store.series_names()) {
    const TimeSeries* s = store.series(name);
    out << "{\"type\":\"series\",\"name\":\"" << json_escape(name)
        << "\",\"total\":" << s->total() << ",\"samples\":[";
    for (std::size_t i = 0; i < s->size(); ++i) {
      if (i != 0) out << ",";
      const SeriesSample& sample = s->at(i);
      out << "[" << json_number(static_cast<double>(sample.t_ns) / 1e6) << ","
          << json_number(sample.value) << "]";
    }
    out << "]}\n";
  }
}

}  // namespace p4runpro::obs
