// Shared JSON formatting helpers for the telemetry exporters (metrics
// JSONL, Chrome trace, alerts, flight-recorder dumps). Everything here is
// deterministic: identical inputs produce byte-identical output, which is
// what makes "two identical runs export identical artifacts" testable.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace p4runpro::obs {

/// Shortest round-trip decimal form (std::to_chars): deterministic for a
/// given value. JSON has no inf/nan, so non-finite values render as 0.
[[nodiscard]] inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

/// Escape a string for embedding inside a JSON string literal: quotes,
/// backslashes and control characters are escaped; bytes >= 0x20 (including
/// UTF-8 multi-byte sequences) pass through unchanged.
[[nodiscard]] inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof esc, "\\u%04x", c);
          out += esc;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace p4runpro::obs
