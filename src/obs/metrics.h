// Telemetry metrics registry: named counters, gauges and fixed-bucket
// histograms shared by every layer of the stack (compiler, controller, RMT
// pipeline). Dependency-free and cheap enough for hot paths: a Counter is a
// plain uint64 behind a stable reference, so callers resolve the name once
// and increment through the cached pointer.
//
// Besides owned metrics the registry supports *probes*: externally-owned
// values (e.g. the pipeline's packet counters) registered as callbacks and
// sampled at export time, so the member variable stays the single source of
// truth. Probes carry an owner token; owners unregister in their destructor.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace p4runpro::obs {

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double delta) noexcept { value_ += delta; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram with quantile extraction. Buckets are defined by
/// ascending upper bounds; an implicit overflow bucket catches everything
/// above the last bound. Quantiles interpolate linearly inside the bucket
/// that crosses the requested rank (the overflow bucket is clamped to the
/// maximum observed value).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  /// q in [0, 1]; p50/p90/p99 are quantile(0.5) etc. An empty histogram
  /// returns 0.0 for every q (never NaN) — but 0 is a *sentinel*, not a
  /// measurement: check count() before treating it as one. The JSONL
  /// exporter and the time-series rollups skip empty histograms entirely
  /// for this reason.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (overflow last).
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const noexcept {
    return counts_;
  }

  /// Default bounds for millisecond timings: 1 us .. ~100 s, ~3 buckets per
  /// decade.
  [[nodiscard]] static std::vector<double> time_ms_bounds();
  /// Default bounds for entry/size counts: 1 .. 65536, powers of two.
  [[nodiscard]] static std::vector<double> count_bounds();

 private:
  std::vector<double> bounds_;          // ascending upper bounds
  std::vector<std::uint64_t> counts_;   // bounds_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Look up or create. References are stable for the registry's lifetime
  /// (node-based storage); hot paths should cache them.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` applies only on first creation; empty means time_ms_bounds().
  Histogram& histogram(std::string_view name, std::span<const double> bounds = {});

  /// Register an externally-owned value sampled at export time. A probe
  /// with the same name replaces the previous one (last owner wins).
  void register_probe(std::string_view name, const void* owner,
                      std::function<double()> fn);
  /// Drop every probe registered by `owner` (called from owner destructors;
  /// probes re-registered under the same name by a newer owner are kept).
  /// Each dropped probe's final sample is frozen into an owned gauge so
  /// later exports still see the last value.
  void unregister_probes(const void* owner);

  /// Sample one probe or gauge by name; returns 0 when absent.
  [[nodiscard]] double gauge_value(std::string_view name) const;
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  [[nodiscard]] const std::map<std::string, Counter, std::less<>>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge, std::less<>>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram, std::less<>>& histograms()
      const noexcept {
    return histograms_;
  }
  /// Gauge view merging owned gauges and sampled probes, sorted by name.
  [[nodiscard]] std::vector<std::pair<std::string, double>> sampled_gauges() const;

  void clear();

 private:
  struct Probe {
    const void* owner = nullptr;
    std::function<double()> fn;
  };

  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, Probe, std::less<>> probes_;
};

/// JSON-lines export: one object per metric, sorted by name within each
/// metric kind (counters, then gauges/probes, then histograms). Output is
/// deterministic for identical registry contents.
void export_metrics_jsonl(const MetricsRegistry& registry, std::ostream& out);

}  // namespace p4runpro::obs
