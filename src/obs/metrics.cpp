#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "obs/json.h"

namespace p4runpro::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
  if (count_ == 1) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const double lo_cum = static_cast<double>(cumulative);
    cumulative += counts_[b];
    if (static_cast<double>(cumulative) < rank) continue;
    // The rank lands in bucket b: interpolate between its bounds.
    double lo = b == 0 ? std::min(min_, bounds_.empty() ? min_ : bounds_[0]) : bounds_[b - 1];
    double hi = b < bounds_.size() ? bounds_[b] : max_;
    lo = std::max(lo, min_);
    hi = std::min(hi, max_);
    if (hi <= lo) return hi;
    const double frac =
        counts_[b] == 0 ? 0.0 : (rank - lo_cum) / static_cast<double>(counts_[b]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return max_;
}

std::vector<double> Histogram::time_ms_bounds() {
  // 1 us .. 100 s in 1-2-5 steps per decade.
  std::vector<double> bounds;
  for (double decade = 1e-3; decade < 1e5; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.0);
    bounds.push_back(decade * 5.0);
  }
  return bounds;
}

std::vector<double> Histogram::count_bounds() {
  std::vector<double> bounds;
  for (double b = 1.0; b <= 65536.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  std::vector<double> b = bounds.empty()
                              ? Histogram::time_ms_bounds()
                              : std::vector<double>(bounds.begin(), bounds.end());
  return histograms_.emplace(std::string(name), Histogram(std::move(b))).first->second;
}

void MetricsRegistry::register_probe(std::string_view name, const void* owner,
                                     std::function<double()> fn) {
  probes_.insert_or_assign(std::string(name), Probe{owner, std::move(fn)});
}

void MetricsRegistry::unregister_probes(const void* owner) {
  for (auto it = probes_.begin(); it != probes_.end();) {
    if (it->second.owner == owner) {
      // Freeze the final sample into an owned gauge so exports taken after
      // the owner's death still carry the last observed value.
      gauge(it->first).set(it->second.fn());
      it = probes_.erase(it);
    } else {
      ++it;
    }
  }
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  if (const auto it = probes_.find(name); it != probes_.end()) return it->second.fn();
  if (const auto it = gauges_.find(name); it != gauges_.end()) return it->second.value();
  return 0.0;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::sampled_gauges() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size() + probes_.size());
  auto g = gauges_.begin();
  auto p = probes_.begin();
  // Merge the two sorted maps; a probe shadows an owned gauge of the same name.
  while (g != gauges_.end() || p != probes_.end()) {
    if (p == probes_.end() || (g != gauges_.end() && g->first < p->first)) {
      out.emplace_back(g->first, g->second.value());
      ++g;
    } else {
      if (g != gauges_.end() && g->first == p->first) ++g;
      out.emplace_back(p->first, p->second.fn());
      ++p;
    }
  }
  return out;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  probes_.clear();
}

void export_metrics_jsonl(const MetricsRegistry& registry, std::ostream& out) {
  for (const auto& [name, counter] : registry.counters()) {
    out << "{\"name\":\"" << json_escape(name) << "\",\"type\":\"counter\",\"value\":"
        << counter.value() << "}\n";
  }
  for (const auto& [name, value] : registry.sampled_gauges()) {
    out << "{\"name\":\"" << json_escape(name) << "\",\"type\":\"gauge\",\"value\":"
        << json_number(value) << "}\n";
  }
  for (const auto& [name, h] : registry.histograms()) {
    // Empty histograms are skipped: their 0-valued p50/p90/p99 read as
    // measurements when they are really "no data" (see Histogram::quantile).
    if (h.count() == 0) continue;
    out << "{\"name\":\"" << json_escape(name) << "\",\"type\":\"histogram\",\"count\":"
        << h.count() << ",\"sum\":" << json_number(h.sum())
        << ",\"min\":" << json_number(h.min()) << ",\"max\":" << json_number(h.max())
        << ",\"p50\":" << json_number(h.quantile(0.5))
        << ",\"p90\":" << json_number(h.quantile(0.9))
        << ",\"p99\":" << json_number(h.quantile(0.99)) << ",\"buckets\":[";
    const auto& counts = h.bucket_counts();
    bool first = true;
    for (std::size_t b = 0; b < counts.size(); ++b) {
      if (counts[b] == 0) continue;  // sparse: empty buckets are implicit
      if (!first) out << ",";
      first = false;
      out << "{\"le\":";
      if (b < h.bounds().size()) {
        out << json_number(h.bounds()[b]);
      } else {
        out << "\"+inf\"";
      }
      out << ",\"count\":" << counts[b] << "}";
    }
    out << "]}\n";
  }
}

}  // namespace p4runpro::obs
