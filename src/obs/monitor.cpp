#include "obs/monitor.h"

#include <chrono>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace p4runpro::obs {

namespace {

[[nodiscard]] std::string_view event_kind_name(MonitorEvent::Kind kind) noexcept {
  switch (kind) {
    case MonitorEvent::Kind::Deploy: return "deploy";
    case MonitorEvent::Kind::Revoke: return "revoke";
    case MonitorEvent::Kind::Alert: return "alert";
    case MonitorEvent::Kind::TxnCommit: return "txn_commit";
    case MonitorEvent::Kind::TxnRollback: return "txn_rollback";
    case MonitorEvent::Kind::ChainTxnCommit: return "chain_txn_commit";
    case MonitorEvent::Kind::ChainTxnRollback: return "chain_txn_rollback";
    case MonitorEvent::Kind::AdmissionShed: return "admission_shed";
    case MonitorEvent::Kind::DefragMove: return "defrag_move";
  }
  return "?";
}

}  // namespace

std::string_view alert_kind_name(AlertKind kind) noexcept {
  switch (kind) {
    case AlertKind::PacketRate: return "packet_rate";
    case AlertKind::RecircRate: return "recirc_rate";
    case AlertKind::DropRate: return "drop_rate";
    case AlertKind::RecircPerPacket: return "recirc_per_packet";
    case AlertKind::DropFraction: return "drop_fraction";
    case AlertKind::StageOccupancy: return "stage_occupancy";
  }
  return "?";
}

void ProgramHealthMonitor::attach_metrics(MetricsRegistry* registry) {
  registry_ = registry;
  if (registry == nullptr) {
    packets_counter_ = nullptr;
    alerts_counter_ = nullptr;
    return;
  }
  packets_counter_ = &registry->counter("obs.monitor.packets");
  alerts_counter_ = &registry->counter("obs.monitor.alerts");
  // Self-overhead probes: wall time this monitor spends in its packet hook
  // (only accumulates with set_overhead_accounting(true)).
  registry->register_probe("obs.self.monitor_hook_ns", this, [this] {
    return static_cast<double>(hook_ns_);
  });
  registry->register_probe("obs.self.monitor_hook_calls", this, [this] {
    return static_cast<double>(hook_calls_);
  });
}

ProgramHealthMonitor::~ProgramHealthMonitor() {
  if (registry_ != nullptr) registry_->unregister_probes(this);
}

ProgramHealthMonitor::Slot& ProgramHealthMonitor::slot(ProgramId id) {
  if (slots_.size() <= id) slots_.resize(id + 1u, Slot(config_));
  Slot& s = slots_[id];
  if (!s.health.known) {
    s.health.known = true;
    if (id == 0) s.health.name = "(unclaimed)";
  }
  return s;
}

const ProgramHealthMonitor::Slot* ProgramHealthMonitor::find_slot(ProgramId id) const {
  if (slots_.size() <= id || !slots_[id].health.known) return nullptr;
  return &slots_[id];
}

void ProgramHealthMonitor::program_deployed(ProgramId id, std::string_view name,
                                            std::uint64_t entries) {
  Slot& s = slot(id);
  // Program ids are recycled: a redeploy under a reused id starts fresh
  // (the event stream keeps the previous occupant's history).
  s.health = ProgramHealth{};
  s.health.known = true;
  s.health.active = true;
  s.health.name = std::string(name);
  s.health.deployed_at_ms = now_ms();
  s.health.entries = entries;
  s.fired.assign(rules_.size(), false);

  MonitorEvent event;
  event.kind = MonitorEvent::Kind::Deploy;
  event.program = id;
  event.program_name = s.health.name;
  event.entries = entries;
  push_event(std::move(event));
}

void ProgramHealthMonitor::program_revoked(ProgramId id) {
  Slot& s = slot(id);
  s.health.active = false;
  s.health.revoked_at_ms = now_ms();

  MonitorEvent event;
  event.kind = MonitorEvent::Kind::Revoke;
  event.program = id;
  event.program_name = s.health.name;
  push_event(std::move(event));
}

void ProgramHealthMonitor::txn_committed(ProgramId id, std::string_view name) {
  MonitorEvent event;
  event.kind = MonitorEvent::Kind::TxnCommit;
  event.program = id;
  event.program_name = std::string(name);
  push_event(std::move(event));
}

void ProgramHealthMonitor::txn_rolled_back(ProgramId id, std::string_view name,
                                           std::string_view reason) {
  MonitorEvent event;
  event.kind = MonitorEvent::Kind::TxnRollback;
  event.program = id;
  event.program_name = std::string(name);
  event.detail = std::string(reason);
  push_event(std::move(event));
}

void ProgramHealthMonitor::chain_txn_committed(ProgramId id, std::string_view name,
                                               int hops) {
  MonitorEvent event;
  event.kind = MonitorEvent::Kind::ChainTxnCommit;
  event.program = id;
  event.program_name = std::string(name);
  event.hops = hops;
  push_event(std::move(event));
}

void ProgramHealthMonitor::chain_txn_rolled_back(ProgramId id, std::string_view name,
                                                 int hops, int faulted_hop,
                                                 std::string_view reason) {
  MonitorEvent event;
  event.kind = MonitorEvent::Kind::ChainTxnRollback;
  event.program = id;
  event.program_name = std::string(name);
  event.hops = hops;
  event.faulted_hop = faulted_hop;
  event.detail = std::string(reason);
  push_event(std::move(event));
}

void ProgramHealthMonitor::admission_shed(std::uint32_t tenant,
                                          std::string_view name,
                                          std::string_view reason) {
  MonitorEvent event;
  event.kind = MonitorEvent::Kind::AdmissionShed;
  event.program_name = std::string(name);
  event.tenant = tenant;
  event.detail = std::string(reason);
  push_event(std::move(event));
}

void ProgramHealthMonitor::defrag_moved(ProgramId old_id, ProgramId new_id,
                                        std::string_view name,
                                        std::uint64_t frag_before,
                                        std::uint64_t frag_after) {
  MonitorEvent event;
  event.kind = MonitorEvent::Kind::DefragMove;
  event.program = new_id;
  event.program_name = std::string(name);
  event.old_program = old_id;
  event.gain = frag_before >= frag_after ? frag_before - frag_after : 0;
  push_event(std::move(event));
}

void ProgramHealthMonitor::on_stage_occupancy(int rpb, std::uint32_t used,
                                              std::uint32_t capacity) {
  if (rpb < 0) return;
  if (stages_.size() <= static_cast<std::size_t>(rpb)) {
    stages_.resize(static_cast<std::size_t>(rpb) + 1);
  }
  StageState& stage = stages_[static_cast<std::size_t>(rpb)];
  stage.used = used;
  stage.capacity = capacity;
  if (stage.fired.size() < rules_.size()) stage.fired.resize(rules_.size(), false);

  const double frac =
      capacity == 0 ? 0.0 : static_cast<double>(used) / static_cast<double>(capacity);
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const AlertRule& rule = rules_[r];
    if (rule.kind != AlertKind::StageOccupancy) continue;
    if (rule.rpb != 0 && rule.rpb != rpb) continue;
    if (frac >= rule.threshold) {
      if (!stage.fired[r]) {
        stage.fired[r] = true;
        fire_alert(rule, r, 0, "", frac, rpb);
      }
    } else {
      stage.fired[r] = false;
    }
  }
}

void ProgramHealthMonitor::add_rule(AlertRule rule) {
  rules_.push_back(std::move(rule));
  for (Slot& s : slots_) s.fired.resize(rules_.size(), false);
  for (StageState& stage : stages_) stage.fired.resize(rules_.size(), false);
}

void ProgramHealthMonitor::clear_rules() {
  rules_.clear();
  for (Slot& s : slots_) s.fired.clear();
  for (StageState& stage : stages_) stage.fired.clear();
}

void ProgramHealthMonitor::on_packet(const rmt::PacketObservation& obs) {
  // Optional self-overhead accounting: two steady_clock reads bracketing
  // the hook. Off by default — the reads are themselves overhead.
  const auto hook_start = account_overhead_
                              ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{};
  ++packets_observed_;
  if (packets_counter_ != nullptr) packets_counter_->inc();
  last_table_trace_ = obs.table_trace;

  Slot& s = slot(obs.program);
  ProgramHealth& h = s.health;
  ++h.packets;
  h.table_hits += obs.table_hits;
  h.table_misses += obs.table_misses;
  h.salu_updates += obs.salu_execs;
  h.recirc_passes += static_cast<std::uint64_t>(obs.recirc_passes);
  const bool dropped = obs.fate == rmt::PacketFate::Dropped ||
                       obs.fate == rmt::PacketFate::RecircLimit;
  if (dropped) ++h.drops;

  const SimClock::Nanos now = now_ns();
  s.packets_w.add(now);
  if (obs.recirc_passes > 0) {
    s.recirc_w.add(now, static_cast<std::uint64_t>(obs.recirc_passes));
  }
  if (dropped) s.drops_w.add(now);

  // Journey capture first, rule evaluation second: when this packet trips
  // an alert, its own journey is the newest entry of the frozen ring.
  if (obs.events != nullptr && flight_ != nullptr && !flight_->frozen()) {
    PacketJourney journey;
    journey.seq = obs.seq;
    journey.t_ms = now_ms();
    journey.program = obs.program;
    journey.program_name = h.name;
    journey.fate = obs.fate;
    journey.ingress_port = obs.ingress_port;
    journey.egress_port = obs.egress_port;
    journey.recirc_passes = obs.recirc_passes;
    journey.table_hits = obs.table_hits;
    journey.salu_execs = obs.salu_execs;
    journey.table_trace = obs.table_trace;
    journey.table_generation = obs.table_generation;
    journey.events = *obs.events;
    flight_->record(std::move(journey));
  }

  if (!rules_.empty()) evaluate_rules(obs.program, s);

  // Cadence-gated time-series tick: a single compare when not due.
  if (series_ != nullptr && registry_ != nullptr) {
    series_->maybe_sample(*registry_, now);
  }

  if (account_overhead_) {
    ++hook_calls_;
    hook_ns_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - hook_start)
            .count());
  }
}

double ProgramHealthMonitor::rule_value(const AlertRule& rule, const Slot& s,
                                        SimClock::Nanos now) const {
  switch (rule.kind) {
    case AlertKind::PacketRate:
      return s.packets_w.per_second(now);
    case AlertKind::RecircRate:
      return s.recirc_w.per_second(now);
    case AlertKind::DropRate:
      return s.drops_w.per_second(now);
    case AlertKind::RecircPerPacket: {
      const std::uint64_t pkts = s.packets_w.sum(now);
      return pkts == 0 ? 0.0
                       : static_cast<double>(s.recirc_w.sum(now)) /
                             static_cast<double>(pkts);
    }
    case AlertKind::DropFraction: {
      const std::uint64_t pkts = s.packets_w.sum(now);
      return pkts == 0 ? 0.0
                       : static_cast<double>(s.drops_w.sum(now)) /
                             static_cast<double>(pkts);
    }
    case AlertKind::StageOccupancy:
      return 0.0;  // evaluated in on_stage_occupancy, not per packet
  }
  return 0.0;
}

void ProgramHealthMonitor::evaluate_rules(ProgramId id, Slot& s) {
  const SimClock::Nanos now = now_ns();
  if (s.fired.size() < rules_.size()) s.fired.resize(rules_.size(), false);
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const AlertRule& rule = rules_[r];
    if (rule.kind == AlertKind::StageOccupancy) continue;
    if (rule.program != 0 && rule.program != id) continue;
    const double value = rule_value(rule, s, now);
    if (value >= rule.threshold) {
      if (!s.fired[r]) {
        s.fired[r] = true;
        fire_alert(rule, r, id, s.health.name, value, 0);
      }
    } else {
      s.fired[r] = false;
    }
  }
}

void ProgramHealthMonitor::fire_alert(const AlertRule& rule, std::size_t rule_index,
                                      ProgramId id, std::string_view name,
                                      double value, int rpb) {
  (void)rule_index;
  ++alerts_fired_;
  if (alerts_counter_ != nullptr) alerts_counter_->inc();

  MonitorEvent event;
  event.kind = MonitorEvent::Kind::Alert;
  event.program = id;
  event.program_name = std::string(name);
  event.rule = rule.name;
  event.value = value;
  event.threshold = rule.threshold;
  event.rpb = rpb;
  // Packet-path alerts fire outside any control operation: attribute them
  // to the operation that installed the table state the traffic ran
  // against. Control-path alerts (occupancy during an install) are stamped
  // from the active context by push_event instead.
  if (trace_ctx_ == nullptr || !trace_ctx_->valid()) {
    event.trace = last_table_trace_;
  }
  push_event(std::move(event));

  if (flight_ != nullptr) flight_->freeze(rule.name, now_ms());
}

void ProgramHealthMonitor::series_alert(std::string_view series,
                                        std::string_view rule, double value,
                                        double threshold) {
  ++alerts_fired_;
  if (alerts_counter_ != nullptr) alerts_counter_->inc();

  MonitorEvent event;
  event.kind = MonitorEvent::Kind::Alert;
  event.rule = std::string(rule);
  event.series = std::string(series);
  event.value = value;
  event.threshold = threshold;
  event.trace = last_table_trace_;
  push_event(std::move(event));

  if (flight_ != nullptr) flight_->freeze(std::string(rule), now_ms());
}

void ProgramHealthMonitor::push_event(MonitorEvent event) {
  event.seq = next_event_seq_++;
  event.t_ms = now_ms();
  // Control-path events inherit the active control operation's trace id;
  // packet-path callers (fire_alert) stamp their own fallback beforehand.
  if (event.trace == 0 && trace_ctx_ != nullptr && trace_ctx_->valid()) {
    event.trace = trace_ctx_->trace_id;
  }
  events_.push_back(std::move(event));
  if (events_.size() > config_.max_events) {
    events_.pop_front();
    ++events_dropped_;
  }
}

const ProgramHealth* ProgramHealthMonitor::health(ProgramId id) const {
  const Slot* s = find_slot(id);
  return s == nullptr ? nullptr : &s->health;
}

std::vector<ProgramId> ProgramHealthMonitor::known_programs() const {
  std::vector<ProgramId> ids;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].health.known) ids.push_back(static_cast<ProgramId>(i));
  }
  return ids;
}

double ProgramHealthMonitor::packet_rate(ProgramId id) const {
  const Slot* s = find_slot(id);
  return s == nullptr ? 0.0 : s->packets_w.per_second(now_ns());
}

double ProgramHealthMonitor::recirc_rate(ProgramId id) const {
  const Slot* s = find_slot(id);
  return s == nullptr ? 0.0 : s->recirc_w.per_second(now_ns());
}

double ProgramHealthMonitor::drop_rate(ProgramId id) const {
  const Slot* s = find_slot(id);
  return s == nullptr ? 0.0 : s->drops_w.per_second(now_ns());
}

double ProgramHealthMonitor::recirc_per_packet(ProgramId id) const {
  const Slot* s = find_slot(id);
  if (s == nullptr) return 0.0;
  const SimClock::Nanos now = now_ns();
  const std::uint64_t pkts = s->packets_w.sum(now);
  return pkts == 0 ? 0.0
                   : static_cast<double>(s->recirc_w.sum(now)) /
                         static_cast<double>(pkts);
}

double ProgramHealthMonitor::drop_fraction(ProgramId id) const {
  const Slot* s = find_slot(id);
  if (s == nullptr) return 0.0;
  const SimClock::Nanos now = now_ns();
  const std::uint64_t pkts = s->packets_w.sum(now);
  return pkts == 0 ? 0.0
                   : static_cast<double>(s->drops_w.sum(now)) /
                         static_cast<double>(pkts);
}

void ProgramHealthMonitor::clear() {
  slots_.clear();
  rules_.clear();
  stages_.clear();
  events_.clear();
  next_event_seq_ = 0;
  events_dropped_ = 0;
  alerts_fired_ = 0;
  packets_observed_ = 0;
  last_table_trace_ = 0;
}

void export_alerts_jsonl(const ProgramHealthMonitor& monitor, std::ostream& out) {
  for (const auto& e : monitor.events()) {
    out << "{\"seq\":" << e.seq << ",\"t_ms\":" << json_number(e.t_ms)
        << ",\"kind\":\"" << event_kind_name(e.kind) << "\",\"program\":"
        << e.program << ",\"name\":\"" << json_escape(e.program_name) << "\"";
    switch (e.kind) {
      case MonitorEvent::Kind::Deploy:
        out << ",\"entries\":" << e.entries;
        break;
      case MonitorEvent::Kind::Revoke:
      case MonitorEvent::Kind::TxnCommit:
        break;
      case MonitorEvent::Kind::TxnRollback:
        out << ",\"detail\":\"" << json_escape(e.detail) << "\"";
        break;
      case MonitorEvent::Kind::ChainTxnCommit:
        out << ",\"hops\":" << e.hops;
        break;
      case MonitorEvent::Kind::ChainTxnRollback:
        out << ",\"hops\":" << e.hops << ",\"faulted_hop\":" << e.faulted_hop
            << ",\"detail\":\"" << json_escape(e.detail) << "\"";
        break;
      case MonitorEvent::Kind::Alert:
        out << ",\"rule\":\"" << json_escape(e.rule)
            << "\",\"value\":" << json_number(e.value)
            << ",\"threshold\":" << json_number(e.threshold);
        if (e.rpb != 0) out << ",\"rpb\":" << e.rpb;
        if (!e.series.empty()) {
          out << ",\"series\":\"" << json_escape(e.series) << "\"";
        }
        break;
      case MonitorEvent::Kind::AdmissionShed:
        out << ",\"tenant\":" << e.tenant << ",\"detail\":\""
            << json_escape(e.detail) << "\"";
        break;
      case MonitorEvent::Kind::DefragMove:
        out << ",\"old_program\":" << e.old_program << ",\"gain\":" << e.gain;
        break;
    }
    if (e.trace != 0) {
      out << ",\"trace\":\"" << format_trace_id(e.trace) << "\"";
    }
    out << "}\n";
  }
}

}  // namespace p4runpro::obs
