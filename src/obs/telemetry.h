// The telemetry bundle every layer shares: one metrics registry, one span
// tracer, one per-program health monitor and its packet flight recorder.
// Components take a `Telemetry*` (optional, defaulted); when none is
// supplied they fall back to the process-wide default instance so ad-hoc
// harnesses and the bench binaries get telemetry for free.
//
// Sharing rules: the tracer and monitor are bound to the clock of the last
// controller constructed against the bundle, the pipeline observer is the
// bundle's monitor (last controller wins), and probe names collide
// last-writer-wins. Harnesses that need isolated observations (tests,
// multi-testbed experiments) construct their own Telemetry and pass it
// explicitly.
#pragma once

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "obs/trace.h"

namespace p4runpro::obs {

struct Telemetry {
  MetricsRegistry metrics;
  SpanTracer tracer;
  FlightRecorder flight;
  ProgramHealthMonitor monitor;

  Telemetry() {
    monitor.set_flight_recorder(&flight);
    monitor.attach_metrics(&metrics);
  }

  void clear() {
    metrics.clear();
    tracer.clear();
    flight.clear();
    monitor.clear();
    // clear() empties the registry, invalidating the monitor's cached
    // counter handles — re-resolve them against the fresh registry.
    monitor.attach_metrics(&metrics);
  }
};

/// Process-wide default bundle (used when components get a null Telemetry*).
[[nodiscard]] Telemetry& default_telemetry();

/// `telemetry` if non-null, else the default bundle.
[[nodiscard]] inline Telemetry& telemetry_or_default(Telemetry* telemetry) {
  return telemetry != nullptr ? *telemetry : default_telemetry();
}

/// Null-safe span helper: no-op scope when `telemetry` is null.
[[nodiscard]] inline SpanTracer::Scope span(Telemetry* telemetry, std::string_view name,
                                            std::string_view cat = "") {
  if (telemetry == nullptr) return {};
  return telemetry->tracer.span(name, cat);
}

}  // namespace p4runpro::obs
