// The telemetry bundle every layer shares: one metrics registry, one span
// tracer, one per-program health monitor and its packet flight recorder.
// Components take a `Telemetry*` (optional, defaulted); when none is
// supplied they fall back to the process-wide default instance so ad-hoc
// harnesses and the bench binaries get telemetry for free.
//
// Sharing rules: the tracer and monitor are bound to the clock of the last
// controller constructed against the bundle, the pipeline observer is the
// bundle's monitor (last controller wins), and probe names collide
// last-writer-wins. Harnesses that need isolated observations (tests,
// multi-testbed experiments) construct their own Telemetry and pass it
// explicitly.
#pragma once

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

namespace p4runpro::obs {

struct Telemetry {
  MetricsRegistry metrics;  ///< declared first: destroyed last, so probe
                            ///< owners (monitor, series) unregister safely
  SpanTracer tracer;
  FlightRecorder flight;
  ProgramHealthMonitor monitor;
  TimeSeriesStore series;

  /// The bundle's active causal trace context. obs::TraceScope mints a
  /// fresh trace id here at each controller public entry point (or adopts
  /// the existing one for nested entries); tracer spans and monitor events
  /// opened while it is valid carry its id.
  TraceContext active_trace;
  /// Next trace id to mint. Deterministic: monotonically increasing from 1
  /// per bundle (0 means "no trace"); clear() restarts it, so ids recycle
  /// across clears — trace reports are only meaningful within one epoch.
  std::uint64_t next_trace_id = 1;

  Telemetry() {
    monitor.set_flight_recorder(&flight);
    monitor.attach_metrics(&metrics);
    monitor.set_trace_context(&active_trace);
    monitor.set_series_store(&series);
    tracer.set_trace_context(&active_trace);
    series.set_alert_sink(&monitor);
    series.attach_self_probes(metrics);
  }

  void clear() {
    metrics.clear();
    tracer.clear();
    flight.clear();
    monitor.clear();
    series.clear();
    active_trace = TraceContext{};
    next_trace_id = 1;
    // clear() empties the registry, invalidating the monitor's cached
    // counter handles and both components' probes — re-attach against the
    // fresh registry.
    monitor.attach_metrics(&metrics);
    series.attach_self_probes(metrics);
  }
};

/// Process-wide default bundle (used when components get a null Telemetry*).
[[nodiscard]] Telemetry& default_telemetry();

/// `telemetry` if non-null, else the default bundle.
[[nodiscard]] inline Telemetry& telemetry_or_default(Telemetry* telemetry) {
  return telemetry != nullptr ? *telemetry : default_telemetry();
}

/// Null-safe span helper: no-op scope when `telemetry` is null.
[[nodiscard]] inline SpanTracer::Scope span(Telemetry* telemetry, std::string_view name,
                                            std::string_view cat = "") {
  if (telemetry == nullptr) return {};
  return telemetry->tracer.span(name, cat);
}

/// RAII causal-trace scope for controller public entry points. On
/// construction, mints a fresh trace id into the bundle's active context —
/// or, when a valid context is already active (a nested entry point, e.g.
/// ChainController::link driving per-hop Controller calls), adopts it so
/// the whole operation shares one id. Restores the previous context on
/// destruction. Inert when `telemetry` is null.
///
/// Thread discipline: the context is bundle-shared state — construct
/// TraceScope only inside the controller's locked regions (the same rule
/// the tracer already follows).
class TraceScope {
 public:
  TraceScope() = default;
  explicit TraceScope(Telemetry* telemetry) : telemetry_(telemetry) {
    if (telemetry_ == nullptr) return;
    prev_ = telemetry_->active_trace;
    if (!prev_.valid()) {
      telemetry_->active_trace =
          TraceContext{telemetry_->next_trace_id++, 0};
      minted_ = true;
    }
  }
  /// Re-adopt a previously captured context (async commit dance): a session
  /// that released the lock for a channel wait captures the active context
  /// before unlocking and re-installs it here after re-locking, so the
  /// finish-side spans and monitor events carry the operation's trace id.
  TraceScope(Telemetry* telemetry, TraceContext adopt) : telemetry_(telemetry) {
    if (telemetry_ == nullptr) return;
    prev_ = telemetry_->active_trace;
    telemetry_->active_trace = adopt;
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope() {
    if (telemetry_ != nullptr) telemetry_->active_trace = prev_;
  }

  /// The operation's trace id (the adopted one for nested entries);
  /// 0 when inert.
  [[nodiscard]] std::uint64_t trace_id() const noexcept {
    return telemetry_ == nullptr ? 0 : telemetry_->active_trace.trace_id;
  }
  /// True when this scope minted a fresh id (outermost entry point).
  [[nodiscard]] bool minted() const noexcept { return minted_; }

 private:
  Telemetry* telemetry_ = nullptr;
  TraceContext prev_;
  bool minted_ = false;
};

}  // namespace p4runpro::obs
