// Time-series telemetry store: fixed-capacity ring-buffer series sampled
// from a MetricsRegistry on a SimClock cadence. Counters are recorded as
// cumulative series (rates fall out of the query API), gauges and probes as
// instantaneous values, histograms as p50/p90/p99 rollup series (empty
// histograms are skipped — no misleading zero quantiles). On top of the
// samples sits an EWMA/z-score anomaly detector: watched series feed the
// health monitor's alert stream edge-triggered, so a rate step fires
// exactly one alert and re-arms only after the smoothed estimate adapts.
//
// The store also accounts its *own* cost: wall nanoseconds spent inside
// sample() accumulate and are published as `obs.self.*` probes, so the
// telemetry overhead is itself a first-class series (bench/obs_overhead.cpp
// turns this into the committed BENCH_obs.json baseline).
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"

namespace p4runpro::obs {

class MetricsRegistry;
class ProgramHealthMonitor;

/// One retained sample of a series.
struct SeriesSample {
  SimClock::Nanos t_ns = 0;  ///< virtual time of the sampling tick
  double value = 0.0;
};

/// Fixed-capacity ring of (virtual time, value) samples; push evicts the
/// oldest once full. Queries index from the oldest *retained* sample.
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void push(SimClock::Nanos t_ns, double value);

  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  /// Samples ever pushed, including evicted ones.
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// i-th retained sample, 0 = oldest. Precondition: i < size().
  [[nodiscard]] const SeriesSample& at(std::size_t i) const;
  [[nodiscard]] const SeriesSample& newest() const { return at(size() - 1); }

  /// Last n samples, oldest first (fewer when the series is shorter).
  [[nodiscard]] std::vector<SeriesSample> last_n(std::size_t n) const;
  /// newest.value - value n samples back (0 when not enough samples).
  [[nodiscard]] double delta(std::size_t n = 1) const;
  /// (newest - oldest retained) per second of virtual time — the average
  /// rate over the retained window. For cumulative counter series this is
  /// the counter's rate; 0 with fewer than two samples.
  [[nodiscard]] double rate_per_s() const;

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< index of the oldest retained sample
  std::uint64_t total_ = 0;
  std::vector<SeriesSample> ring_;
};

/// EWMA/z-score detector knobs (per watched series).
struct AnomalyConfig {
  double alpha = 0.3;       ///< EWMA smoothing factor for mean and variance
  double z_threshold = 4.0; ///< |z| at which the alert fires
  int warmup_samples = 8;   ///< samples consumed before detection arms
  double min_std = 1e-9;    ///< variance floor (flat series never divide by 0)
};

class TimeSeriesStore {
 public:
  struct Config {
    std::size_t capacity = 512;       ///< ring capacity per series
    bool histogram_quantiles = true;  ///< sample <hist>.p50/.p90/.p99 rollups
  };

  TimeSeriesStore() = default;
  explicit TimeSeriesStore(Config config) : config_(config) {}

  /// Sampling cadence in virtual time; 0 (the default) disables
  /// maybe_sample() entirely, making the hot-path check a single compare.
  void set_cadence(SimClock::Nanos cadence_ns) noexcept { cadence_ns_ = cadence_ns; }
  [[nodiscard]] SimClock::Nanos cadence() const noexcept { return cadence_ns_; }

  /// Watch a counter's instantaneous rate (delta / dt between consecutive
  /// sampling ticks, recorded as the series "<name>.rate") with the EWMA
  /// detector. Alerts go to the sink monitor, edge-triggered: one alert at
  /// the step, re-armed only after |z| falls back under the threshold.
  void watch_rate(std::string counter_name, AnomalyConfig config = {});
  /// Watch a gauge/probe series value directly (same detector semantics).
  void watch_value(std::string series_name, AnomalyConfig config = {});
  /// Where detector alerts land (ProgramHealthMonitor::series_alert);
  /// null disables firing (detector state still advances).
  void set_alert_sink(ProgramHealthMonitor* monitor) noexcept { monitor_ = monitor; }

  /// Cadence-gated sampling tick: cheap no-op until `now` reaches the next
  /// due time (hot-path safe), then one full sample().
  void maybe_sample(const MetricsRegistry& registry, SimClock::Nanos now) {
    if (cadence_ns_ == 0 || now < next_due_ns_) return;
    next_due_ns_ = now + cadence_ns_;
    sample(registry, now);
  }

  /// Unconditional sampling tick at virtual time `now`: snapshot every
  /// counter, sampled gauge/probe and non-empty histogram into its series,
  /// derive watched rates, and run the anomaly detector.
  void sample(const MetricsRegistry& registry, SimClock::Nanos now);

  // --- query API ----------------------------------------------------------
  [[nodiscard]] const TimeSeries* series(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> series_names() const;
  [[nodiscard]] std::vector<SeriesSample> last_n(std::string_view name,
                                                 std::size_t n) const;
  /// Average rate over the series' retained window (see TimeSeries::rate_per_s).
  [[nodiscard]] double rate(std::string_view name) const;
  [[nodiscard]] double delta(std::string_view name, std::size_t n = 1) const;

  [[nodiscard]] std::uint64_t samples_taken() const noexcept { return samples_taken_; }
  [[nodiscard]] std::uint64_t anomalies_fired() const noexcept { return anomalies_fired_; }
  /// Wall nanoseconds spent inside sample() so far (self-overhead).
  [[nodiscard]] std::uint64_t self_sample_ns() const noexcept { return self_sample_ns_; }

  /// Publish the store's self-overhead as registry probes:
  ///   obs.self.series_samples    sampling ticks taken
  ///   obs.self.series_sample_ns  wall ns spent sampling
  ///   obs.self.series_count      live series in the store
  /// They become series themselves on the next tick.
  void attach_self_probes(MetricsRegistry& registry);

  /// Drop all series, detector state and counters; keeps cadence, watches'
  /// configs, and the alert sink.
  void clear();

  ~TimeSeriesStore();

 private:
  struct Watch {
    std::string name;  ///< counter (is_rate) or series name (value watch)
    bool is_rate = false;
    AnomalyConfig config;
    // EWMA detector state
    double mean = 0.0;
    double var = 0.0;
    int seen = 0;
    bool armed = true;  ///< edge trigger: disarms on fire, re-arms under threshold
    // rate derivation state
    double last_value = 0.0;
    SimClock::Nanos last_t_ns = 0;
    bool have_last = false;
  };

  TimeSeries& series_ref(std::string_view name);
  void feed_detector(Watch& watch, std::string_view series_name, double value);

  Config config_;
  SimClock::Nanos cadence_ns_ = 0;
  SimClock::Nanos next_due_ns_ = 0;
  std::map<std::string, TimeSeries, std::less<>> series_;
  std::vector<Watch> watches_;
  ProgramHealthMonitor* monitor_ = nullptr;
  MetricsRegistry* probe_registry_ = nullptr;  ///< registry holding our probes
  std::uint64_t samples_taken_ = 0;
  std::uint64_t anomalies_fired_ = 0;
  std::uint64_t self_sample_ns_ = 0;
};

/// JSONL export: one object per series ({"type":"series","name":...,
/// "samples":[[t_ms,value],...]}), sorted by name, oldest sample first.
/// Deterministic for identical store contents.
void export_series_jsonl(const TimeSeriesStore& store, std::ostream& out);

}  // namespace p4runpro::obs
