#include "control/admission.h"

#include <algorithm>
#include <cassert>

namespace p4runpro::ctrl {

double AdmissionController::stamp_finish_locked(TenantId tenant, double weight) {
  const double w = weight > 0.0 ? weight : 1.0;
  double& last = last_finish_[tenant];
  // An idle tenant re-enters at the current virtual time (no banked
  // credit); a backlogged one continues from its previous finish.
  const double finish = std::max(vtime_, last) + 1.0 / w;
  last = finish;
  return finish;
}

void AdmissionController::grant_waiters_locked() {
  const int max_inflight = std::max(config_.max_inflight, 1);
  bool granted_any = false;
  while (inflight_ < max_inflight && !waiters_.empty()) {
    auto best = waiters_.end();
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (it->granted) continue;
      if (best == waiters_.end() || it->vfinish < best->vfinish ||
          (it->vfinish == best->vfinish && it->arrival < best->arrival)) {
        best = it;
      }
    }
    if (best == waiters_.end()) break;  // every remaining node already granted
    best->granted = true;
    best->grant_seq = ++next_grant_;
    ++inflight_;
    vtime_ = std::max(vtime_, best->vfinish);
    ++tenant_grants_[best->tenant];
    granted_any = true;
  }
  if (granted_any) cv_.notify_all();
}

Result<AdmissionController::Grant> AdmissionController::acquire(TenantId tenant,
                                                                double weight) {
  std::unique_lock<std::mutex> lock(mu_);
  const bool immediate =
      inflight_ < std::max(config_.max_inflight, 1) && waiters_.empty();
  // Granted-but-not-yet-departed nodes are not waiting — only un-granted
  // waiters count against the queue bound.
  std::size_t waiting = 0;
  for (const Waiter& other : waiters_) {
    if (!other.granted) ++waiting;
  }
  if (!immediate &&
      waiting >= static_cast<std::size_t>(std::max(config_.max_queued, 0))) {
    ++sheds_;
    ++tenant_sheds_[tenant];
    return Error{"admission queue full (" + std::to_string(waiting) +
                     " waiting, " + std::to_string(inflight_) +
                     " in flight); session shed",
                 "AdmissionController", ErrorCode::AdmissionShed};
  }
  Waiter& w = waiters_.emplace_back();
  w.tenant = tenant;
  w.vfinish = stamp_finish_locked(tenant, weight);
  w.arrival = ++next_arrival_;
  grant_waiters_locked();
  if (!w.granted) cv_.wait(lock, [&w] { return w.granted; });

  Grant grant;
  grant.seq = w.grant_seq;
  grant.queued = !immediate;
  for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
    if (&*it == &w) {
      waiters_.erase(it);
      break;
    }
  }
  return grant;
}

void AdmissionController::release() {
  std::lock_guard<std::mutex> lock(mu_);
  assert(inflight_ > 0 && "release without a matching acquire");
  --inflight_;
  grant_waiters_locked();
}

void AdmissionController::set_config(AdmissionConfig config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
}

AdmissionConfig AdmissionController::config() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_;
}

int AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

std::size_t AdmissionController::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t waiting = 0;
  for (const Waiter& w : waiters_) {
    if (!w.granted) ++waiting;
  }
  return waiting;
}

std::uint64_t AdmissionController::grants() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_grant_;
}

std::uint64_t AdmissionController::sheds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sheds_;
}

std::uint64_t AdmissionController::tenant_grants(TenantId tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenant_grants_.find(tenant);
  return it == tenant_grants_.end() ? 0 : it->second;
}

std::uint64_t AdmissionController::tenant_sheds(TenantId tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenant_sheds_.find(tenant);
  return it == tenant_sheds_.end() ? 0 : it->second;
}

}  // namespace p4runpro::ctrl
