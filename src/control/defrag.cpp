#include "control/defrag.h"

#include <algorithm>
#include <map>

namespace p4runpro::ctrl {

namespace {

/// Mirror of ResourceManager::insert_coalesced on a sorted vector.
void release_coalesced(std::vector<MemBlock>& blocks, MemBlock block) {
  auto it = blocks.begin();
  while (it != blocks.end() && it->base < block.base) ++it;
  it = blocks.insert(it, block);
  if (auto next = std::next(it);
      next != blocks.end() && it->base + it->size == next->base) {
    it->size += next->size;
    it = std::prev(blocks.erase(next));
  }
  if (it != blocks.begin()) {
    auto prev = std::prev(it);
    if (prev->base + prev->size == it->base) {
      prev->size += it->size;
      blocks.erase(it);
    }
  }
}

/// Mirror of ResourceManager::allocate_memory's first-fit carve.
[[nodiscard]] bool carve_first_fit(std::vector<MemBlock>& blocks,
                                   std::uint32_t size) {
  for (auto it = blocks.begin(); it != blocks.end(); ++it) {
    if (it->size >= size) {
      it->base += size;
      it->size -= size;
      if (it->size == 0) blocks.erase(it);
      return true;
    }
  }
  return false;
}

}  // namespace

std::uint64_t fragmentation_words(
    const std::vector<std::vector<MemBlock>>& free_mem) {
  std::uint64_t frag = 0;
  for (const auto& blocks : free_mem) {
    std::uint64_t total = 0;
    std::uint64_t largest = 0;
    for (const MemBlock& b : blocks) {
      total += b.size;
      largest = std::max<std::uint64_t>(largest, b.size);
    }
    frag += total - largest;
  }
  return frag;
}

bool simulate_compaction(const ResourceManager::Snapshot& snap,
                         const InstalledProgram& program,
                         std::uint64_t* frag_after) {
  // Transient double occupancy: the copy's table entries are reserved while
  // the old copy still holds its own. The per-RPB demand is the old copy's
  // handle histogram (the stored allocation pins the same stages).
  std::map<int, std::uint32_t> entry_demand;
  for (const auto& [rpb, handle] : program.rpb_handles) {
    (void)handle;
    ++entry_demand[rpb];
  }
  for (const auto& [rpb, count] : entry_demand) {
    if (rpb < 1 || static_cast<std::size_t>(rpb) > snap.free_entries.size() ||
        snap.free_entries[static_cast<std::size_t>(rpb - 1)] < count) {
      return false;
    }
  }

  std::vector<std::vector<MemBlock>> lists = snap.free_mem;
  // Reserve walk, byte-for-byte the transaction's: alloc.vmem_rpb in map
  // order, first-fit of the IR's vmem size in the pinned RPB.
  for (const auto& [vmem, rpb] : program.alloc.vmem_rpb) {
    if (rpb < 1 || static_cast<std::size_t>(rpb) > lists.size()) return false;
    const auto size_it = program.ir.vmem_sizes.find(vmem);
    if (size_it == program.ir.vmem_sizes.end()) return false;
    if (!carve_first_fit(lists[static_cast<std::size_t>(rpb - 1)],
                         size_it->second)) {
      return false;
    }
  }
  // Old copy revoked: its blocks coalesce back.
  for (const auto& [vmem, placement] : program.placements) {
    (void)vmem;
    if (placement.rpb < 1 ||
        static_cast<std::size_t>(placement.rpb) > lists.size()) {
      return false;
    }
    release_coalesced(lists[static_cast<std::size_t>(placement.rpb - 1)],
                      placement.block);
  }
  *frag_after = fragmentation_words(lists);
  return true;
}

}  // namespace p4runpro::ctrl
