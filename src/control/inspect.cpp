#include "control/inspect.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "obs/telemetry.h"

namespace p4runpro::ctrl {

namespace {

[[nodiscard]] std::string key_str(const rmt::TernaryKey& key) {
  if (key.mask == 0) return "*";
  char buf[32];
  if (key.mask == 0xffffffffu) {
    std::snprintf(buf, sizeof buf, "0x%x", key.value);
  } else {
    std::snprintf(buf, sizeof buf, "0x%x/0x%x", key.value, key.mask);
  }
  return buf;
}

}  // namespace

std::string disassemble(const InstalledProgram& program, const dp::DataplaneSpec& spec) {
  std::ostringstream out;
  out << "program '" << program.name << "' (id " << program.id << "): depth "
      << program.ir.depth << ", " << program.alloc.rounds << " round(s), "
      << program.plan.rpb_entries.size() << " RPB entries\n";

  out << "  filters:";
  for (const auto& f : program.ir.filters) {
    out << " <" << rmt::field_name(f.field) << ", 0x" << std::hex << f.value
        << "/0x" << f.mask << std::dec << ">";
  }
  out << "\n";

  if (!program.placements.empty()) {
    out << "  memory:\n";
    for (const auto& [vmem, placement] : program.placements) {
      out << "    " << vmem << ": RPB " << placement.rpb << " ["
          << placement.block.base << ", "
          << placement.block.base + placement.block.size << ") ("
          << placement.block.size << " buckets)\n";
    }
  }

  // Entries ordered by (round, physical RPB, branch).
  auto entries = program.plan.rpb_entries;
  std::stable_sort(entries.begin(), entries.end(),
                   [](const rp::RpbEntrySpec& a, const rp::RpbEntrySpec& b) {
                     const auto ka = std::make_tuple(a.keys[dp::kKeyRecirc].value, a.rpb,
                                                     a.keys[dp::kKeyBranch].value);
                     const auto kb = std::make_tuple(b.keys[dp::kKeyRecirc].value, b.rpb,
                                                     b.keys[dp::kKeyBranch].value);
                     return ka < kb;
                   });
  out << "  entries (round / RPB / branch -> operation):\n";
  for (const auto& entry : entries) {
    const Word round = entry.keys[dp::kKeyRecirc].value;
    const Word branch = entry.keys[dp::kKeyBranch].value;
    out << "    r" << round << "  RPB" << entry.rpb
        << (dp::is_ingress_rpb(entry.rpb, spec.ingress_rpbs) ? " (in)" : " (eg)")
        << "  b" << branch << "  " << entry.action.op.str();
    if (entry.action.op.kind == dp::OpKind::Branch) {
      out << " [har=" << key_str(entry.keys[dp::kKeyHar])
          << " sar=" << key_str(entry.keys[dp::kKeySar])
          << " mar=" << key_str(entry.keys[dp::kKeyMar]) << "]";
    }
    if (entry.action.next_branch) {
      out << " -> b" << static_cast<int>(*entry.action.next_branch);
    }
    out << "\n";
  }
  return out.str();
}

std::string telemetry_report(const obs::Telemetry& telemetry) {
  std::ostringstream out;
  char line[160];

  const auto& metrics = telemetry.metrics;
  if (!metrics.counters().empty()) {
    out << "counters:\n";
    for (const auto& [name, counter] : metrics.counters()) {
      std::snprintf(line, sizeof line, "  %-44s %12llu\n", name.c_str(),
                    static_cast<unsigned long long>(counter.value()));
      out << line;
    }
  }

  const auto gauges = metrics.sampled_gauges();
  bool gauge_heading = false;
  for (const auto& [name, value] : gauges) {
    // Per-stage occupancy gauges are mostly idle; print only live stages.
    if (value == 0.0 && name.find("ctrl.rpb.") == 0) continue;
    if (!gauge_heading) {
      out << "gauges:\n";
      gauge_heading = true;
    }
    std::snprintf(line, sizeof line, "  %-44s %14.3f\n", name.c_str(), value);
    out << line;
  }

  if (!metrics.histograms().empty()) {
    out << "histograms:                                     count       p50       "
           "p90       p99       sum\n";
    for (const auto& [name, h] : metrics.histograms()) {
      std::snprintf(line, sizeof line, "  %-44s %7llu %9.3f %9.3f %9.3f %9.3f\n",
                    name.c_str(), static_cast<unsigned long long>(h.count()),
                    h.quantile(0.5), h.quantile(0.9), h.quantile(0.99), h.sum());
      out << line;
    }
  }

  // Span summary: aggregate by name (chronological detail belongs to the
  // Chrome-trace export).
  struct SpanAgg {
    std::uint64_t count = 0;
    double virtual_ms = 0.0;
    double wall_ms = 0.0;
  };
  std::map<std::string, SpanAgg> by_name;
  for (const auto& span : telemetry.tracer.spans()) {
    if (span.open) continue;
    auto& agg = by_name[span.name];
    ++agg.count;
    agg.virtual_ms += span.virtual_ms();
    agg.wall_ms += span.wall_ms;
  }
  if (!by_name.empty()) {
    out << "spans:                                          count   virt_ms   "
           "wall_ms\n";
    for (const auto& [name, agg] : by_name) {
      std::snprintf(line, sizeof line, "  %-44s %7llu %9.3f %9.3f\n", name.c_str(),
                    static_cast<unsigned long long>(agg.count), agg.virtual_ms,
                    agg.wall_ms);
      out << line;
    }
  }
  return out.str();
}

std::string health_report(const obs::Telemetry& telemetry, std::size_t event_tail) {
  const obs::ProgramHealthMonitor& monitor = telemetry.monitor;
  std::ostringstream out;
  char line[200];

  std::snprintf(line, sizeof line,
                "health @ %.3f ms: %llu packets observed, %llu alerts\n",
                monitor.now_ms(),
                static_cast<unsigned long long>(monitor.packets_observed()),
                static_cast<unsigned long long>(monitor.alerts_fired()));
  out << line;

  auto ids = monitor.known_programs();
  // Busiest first; ties broken by id so the layout is deterministic.
  std::stable_sort(ids.begin(), ids.end(), [&](ProgramId a, ProgramId b) {
    return monitor.health(a)->packets > monitor.health(b)->packets;
  });
  if (!ids.empty()) {
    out << "  id  name              st    entries    packets       hits "
           "      salu     recirc      drops   pkt/s  rec/pkt   drop%\n";
    for (ProgramId id : ids) {
      const obs::ProgramHealth& h = *monitor.health(id);
      std::snprintf(line, sizeof line,
                    "  %-3u %-17s %-2s %10llu %10llu %10llu %10llu %10llu "
                    "%10llu %7.0f %8.2f %7.2f\n",
                    static_cast<unsigned>(id), h.name.c_str(),
                    id == 0 ? "--" : (h.active ? "up" : "rm"),
                    static_cast<unsigned long long>(h.entries),
                    static_cast<unsigned long long>(h.packets),
                    static_cast<unsigned long long>(h.table_hits),
                    static_cast<unsigned long long>(h.salu_updates),
                    static_cast<unsigned long long>(h.recirc_passes),
                    static_cast<unsigned long long>(h.drops),
                    monitor.packet_rate(id), monitor.recirc_per_packet(id),
                    100.0 * monitor.drop_fraction(id));
      out << line;
    }
  }

  const auto& events = monitor.events();
  if (!events.empty() && event_tail > 0) {
    out << "events (most recent last):\n";
    const std::size_t first =
        events.size() > event_tail ? events.size() - event_tail : 0;
    for (std::size_t i = first; i < events.size(); ++i) {
      const obs::MonitorEvent& e = events[i];
      switch (e.kind) {
        case obs::MonitorEvent::Kind::Deploy:
          std::snprintf(line, sizeof line,
                        "  [%8.3f ms] deploy  %u '%s' (%llu entries)\n", e.t_ms,
                        static_cast<unsigned>(e.program), e.program_name.c_str(),
                        static_cast<unsigned long long>(e.entries));
          break;
        case obs::MonitorEvent::Kind::Revoke:
          std::snprintf(line, sizeof line, "  [%8.3f ms] revoke  %u '%s'\n",
                        e.t_ms, static_cast<unsigned>(e.program),
                        e.program_name.c_str());
          break;
        case obs::MonitorEvent::Kind::Alert:
          if (e.rpb != 0) {
            std::snprintf(line, sizeof line,
                          "  [%8.3f ms] ALERT   '%s' RPB%d value %.3f >= %.3f\n",
                          e.t_ms, e.rule.c_str(), e.rpb, e.value, e.threshold);
          } else {
            std::snprintf(line, sizeof line,
                          "  [%8.3f ms] ALERT   '%s' program %u '%s' value "
                          "%.3f >= %.3f\n",
                          e.t_ms, e.rule.c_str(), static_cast<unsigned>(e.program),
                          e.program_name.c_str(), e.value, e.threshold);
          }
          break;
      }
      out << line;
    }
  }

  if (const obs::FlightRecorder* flight = monitor.flight_recorder()) {
    if (flight->frozen()) {
      std::snprintf(line, sizeof line,
                    "flight recorder: FROZEN at %.3f ms by '%s' (%zu journeys)\n",
                    flight->frozen_at_ms(), flight->freeze_reason().c_str(),
                    flight->journeys().size());
    } else {
      std::snprintf(line, sizeof line,
                    "flight recorder: recording (%zu journeys buffered, %llu "
                    "recorded)\n",
                    flight->journeys().size(),
                    static_cast<unsigned long long>(flight->recorded()));
    }
    out << line;
  }
  return out.str();
}

}  // namespace p4runpro::ctrl
