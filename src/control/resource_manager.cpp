#include "control/resource_manager.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "obs/telemetry.h"

namespace p4runpro::ctrl {

ResourceManager::ResourceManager(const dp::DataplaneSpec& spec) : spec_(spec) {
  const int total = spec_.total_rpbs();
  free_mem_.resize(static_cast<std::size_t>(total));
  for (auto& list : free_mem_) {
    list.push_back(MemBlock{0, spec_.memory_per_rpb});
  }
  entries_used_.assign(static_cast<std::size_t>(total), 0);
  memory_used_.assign(static_cast<std::size_t>(total), 0);
}

ResourceManager::~ResourceManager() {
  if (telemetry_ != nullptr) telemetry_->metrics.unregister_probes(this);
}

std::uint32_t ResourceManager::stateful_programs(int rpb) const {
  std::uint32_t count = 0;
  for (const auto& [id, placements] : programs_) {
    for (const auto& [vmem, placement] : placements) {
      if (placement.rpb == rpb) {
        ++count;
        break;  // one occupancy slot per program, however many vmems
      }
    }
  }
  return count;
}

void ResourceManager::attach_telemetry(obs::Telemetry* telemetry) {
  if (telemetry_ != nullptr) telemetry_->metrics.unregister_probes(this);
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) return;
  auto& m = telemetry_->metrics;
  for (int rpb = 1; rpb <= spec_.total_rpbs(); ++rpb) {
    char name[64];
    std::snprintf(name, sizeof name, "ctrl.rpb.%02d.tcam_used", rpb);
    m.register_probe(name, this, [this, rpb] {
      return static_cast<double>(entries_used(rpb));
    });
    std::snprintf(name, sizeof name, "ctrl.rpb.%02d.sram_used", rpb);
    m.register_probe(name, this, [this, rpb] {
      return static_cast<double>(memory_used(rpb));
    });
    // The stage has one SALU and one hash unit; both are occupied by every
    // program with a virtual memory pinned here (hash-addressed access).
    std::snprintf(name, sizeof name, "ctrl.rpb.%02d.salu_programs", rpb);
    m.register_probe(name, this, [this, rpb] {
      return static_cast<double>(stateful_programs(rpb));
    });
    std::snprintf(name, sizeof name, "ctrl.rpb.%02d.hash_programs", rpb);
    m.register_probe(name, this, [this, rpb] {
      return static_cast<double>(stateful_programs(rpb));
    });
  }
  m.register_probe("ctrl.resources.entry_utilization", this,
                   [this] { return total_entry_utilization(); });
  m.register_probe("ctrl.resources.memory_utilization", this,
                   [this] { return total_memory_utilization(); });
  m.register_probe("ctrl.resources.programs", this,
                   [this] { return static_cast<double>(programs_.size()); });
  m.register_probe("ctrl.resources.fragmentation_words", this, [this] {
    return static_cast<double>(total_fragmentation_words());
  });
}

std::uint64_t ResourceManager::fragmentation_words(int rpb) const {
  std::uint64_t total = 0;
  std::uint64_t largest = 0;
  for (const MemBlock& b : free_list(rpb)) {
    total += b.size;
    largest = std::max<std::uint64_t>(largest, b.size);
  }
  return total - largest;
}

std::uint64_t ResourceManager::total_fragmentation_words() const {
  std::uint64_t frag = 0;
  for (int rpb = 1; rpb <= spec_.total_rpbs(); ++rpb) {
    frag += fragmentation_words(rpb);
  }
  return frag;
}

std::uint32_t ResourceManager::largest_free_block(int rpb) const {
  std::uint32_t largest = 0;
  for (const MemBlock& b : free_list(rpb)) largest = std::max(largest, b.size);
  return largest;
}

std::list<MemBlock>& ResourceManager::free_list(int rpb) {
  assert(rpb >= 1 && rpb <= spec_.total_rpbs());
  return free_mem_[static_cast<std::size_t>(rpb - 1)];
}

const std::list<MemBlock>& ResourceManager::free_list(int rpb) const {
  assert(rpb >= 1 && rpb <= spec_.total_rpbs());
  return free_mem_[static_cast<std::size_t>(rpb - 1)];
}

bool ResourceManager::Snapshot::can_allocate(
    int rpb, std::span<const std::uint32_t> sizes) const {
  if (rpb < 1 || static_cast<std::size_t>(rpb) > free_mem.size()) return false;
  // Simulate first-fit carving on a copy of the free list.
  std::vector<MemBlock> blocks = free_mem[static_cast<std::size_t>(rpb - 1)];
  for (std::uint32_t size : sizes) {
    bool placed = false;
    for (auto& b : blocks) {
      if (b.size >= size) {
        b.base += size;
        b.size -= size;
        placed = true;
        break;
      }
    }
    if (!placed) return false;
  }
  return true;
}

ResourceManager::Snapshot ResourceManager::snapshot() const {
  Snapshot snap;
  const int total = spec_.total_rpbs();
  snap.free_entries.reserve(static_cast<std::size_t>(total));
  snap.free_mem.reserve(static_cast<std::size_t>(total));
  for (int rpb = 1; rpb <= total; ++rpb) {
    snap.free_entries.push_back(spec_.entries_per_rpb -
                                entries_used_[static_cast<std::size_t>(rpb - 1)]);
    const auto& list = free_list(rpb);
    snap.free_mem.emplace_back(list.begin(), list.end());
  }
  return snap;
}

Result<MemBlock> ResourceManager::allocate_memory(int rpb, std::uint32_t size) {
  auto& list = free_list(rpb);
  for (auto it = list.begin(); it != list.end(); ++it) {
    if (it->size >= size) {
      const MemBlock out{it->base, size};
      it->base += size;
      it->size -= size;
      if (it->size == 0) list.erase(it);
      memory_used_[static_cast<std::size_t>(rpb - 1)] += size;
      return out;
    }
  }
  return Error{"no contiguous free block of size " + std::to_string(size) +
                   " in RPB " + std::to_string(rpb),
               "ResourceManager", ErrorCode::AllocFailed};
}

Status ResourceManager::reclaim_block(int rpb, const MemBlock& block) {
  auto& list = free_list(rpb);
  for (auto it = list.begin(); it != list.end(); ++it) {
    if (it->base > block.base) break;
    if (block.base >= it->base && block.base + block.size <= it->base + it->size) {
      // Split the containing free partition around the reclaimed range.
      const MemBlock before{it->base, block.base - it->base};
      const MemBlock after{block.base + block.size,
                           (it->base + it->size) - (block.base + block.size)};
      it = list.erase(it);
      if (after.size > 0) it = list.insert(it, after);
      if (before.size > 0) list.insert(it, before);
      memory_used_[static_cast<std::size_t>(rpb - 1)] += block.size;
      return {};
    }
  }
  return Error{"block [" + std::to_string(block.base) + ", +" +
                   std::to_string(block.size) + ") of RPB " + std::to_string(rpb) +
                   " is no longer free",
               "ResourceManager", ErrorCode::Conflict};
}

void ResourceManager::insert_coalesced(std::list<MemBlock>& list, MemBlock block) {
  auto it = list.begin();
  while (it != list.end() && it->base < block.base) ++it;
  it = list.insert(it, block);
  // Coalesce with successor.
  auto next = std::next(it);
  if (next != list.end() && it->base + it->size == next->base) {
    it->size += next->size;
    list.erase(next);
  }
  // Coalesce with predecessor.
  if (it != list.begin()) {
    auto prev = std::prev(it);
    if (prev->base + prev->size == it->base) {
      prev->size += it->size;
      list.erase(it);
    }
  }
}

void ResourceManager::free_memory(int rpb, const MemBlock& block) {
  insert_coalesced(free_list(rpb), block);
  auto& used = memory_used_[static_cast<std::size_t>(rpb - 1)];
  assert(used >= block.size);
  used -= block.size;
}

void ResourceManager::lock_memory(int rpb, const MemBlock& block) {
  // The block simply stays out of the free list; accounting keeps it
  // "used" so it cannot be reallocated while resetting.
  (void)rpb;
  (void)block;
}

void ResourceManager::unlock_memory(int rpb, const MemBlock& block) {
  free_memory(rpb, block);
}

Status ResourceManager::reserve_entries(int rpb, std::uint32_t count) {
  auto& used = entries_used_[static_cast<std::size_t>(rpb - 1)];
  if (used + count > spec_.entries_per_rpb) {
    return Error{"table entries exhausted in RPB " + std::to_string(rpb),
                 "ResourceManager", ErrorCode::AllocFailed};
  }
  used += count;
  push_occupancy(rpb, used);
  return {};
}

void ResourceManager::release_entries(int rpb, std::uint32_t count) {
  auto& used = entries_used_[static_cast<std::size_t>(rpb - 1)];
  assert(used >= count);
  used -= count;
  push_occupancy(rpb, used);
}

void ResourceManager::push_occupancy(int rpb, std::uint32_t used) {
  if (telemetry_ != nullptr) {
    telemetry_->monitor.on_stage_occupancy(rpb, used, spec_.entries_per_rpb);
  }
}

void ResourceManager::record_program(ProgramId id,
                                     std::map<std::string, VmemPlacement> placements) {
  programs_[id] = std::move(placements);
}

void ResourceManager::erase_program(ProgramId id) { programs_.erase(id); }

const std::map<std::string, VmemPlacement>* ResourceManager::program_placements(
    ProgramId id) const {
  const auto it = programs_.find(id);
  return it == programs_.end() ? nullptr : &it->second;
}

Result<Word> ResourceManager::read_virtual(const dp::RunproDataplane& dataplane,
                                           ProgramId id, const std::string& vmem,
                                           MemAddr vaddr) const {
  const auto* placements = program_placements(id);
  if (placements == nullptr) {
    return Error{"unknown program", "ResourceManager", ErrorCode::NotFound};
  }
  const auto it = placements->find(vmem);
  if (it == placements->end()) {
    return Error{"unknown memory '" + vmem + "'", "ResourceManager",
                 ErrorCode::NotFound};
  }
  if (vaddr >= it->second.block.size) {
    return Error{"virtual address out of range", "ResourceManager",
                 ErrorCode::OutOfRange};
  }
  return dataplane.rpb(it->second.rpb).memory().read(it->second.block.base + vaddr);
}

Status ResourceManager::write_virtual(dp::RunproDataplane& dataplane, ProgramId id,
                                      const std::string& vmem, MemAddr vaddr,
                                      Word value) const {
  const auto* placements = program_placements(id);
  if (placements == nullptr) {
    return Error{"unknown program", "ResourceManager", ErrorCode::NotFound};
  }
  const auto it = placements->find(vmem);
  if (it == placements->end()) {
    return Error{"unknown memory '" + vmem + "'", "ResourceManager",
                 ErrorCode::NotFound};
  }
  if (vaddr >= it->second.block.size) {
    return Error{"virtual address out of range", "ResourceManager",
                 ErrorCode::OutOfRange};
  }
  dataplane.rpb(it->second.rpb).memory().write(it->second.block.base + vaddr, value);
  return {};
}

std::uint32_t ResourceManager::entries_used(int rpb) const {
  return entries_used_[static_cast<std::size_t>(rpb - 1)];
}

std::uint32_t ResourceManager::memory_used(int rpb) const {
  return memory_used_[static_cast<std::size_t>(rpb - 1)];
}

double ResourceManager::total_entry_utilization() const {
  std::uint64_t used = 0;
  for (auto u : entries_used_) used += u;
  const std::uint64_t total =
      static_cast<std::uint64_t>(spec_.entries_per_rpb) *
      static_cast<std::uint64_t>(spec_.total_rpbs());
  return total == 0 ? 0.0 : static_cast<double>(used) / static_cast<double>(total);
}

double ResourceManager::total_memory_utilization() const {
  std::uint64_t used = 0;
  for (auto u : memory_used_) used += u;
  const std::uint64_t total =
      static_cast<std::uint64_t>(spec_.memory_per_rpb) *
      static_cast<std::uint64_t>(spec_.total_rpbs());
  return total == 0 ? 0.0 : static_cast<double>(used) / static_cast<double>(total);
}

}  // namespace p4runpro::ctrl
