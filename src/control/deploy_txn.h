// Deploy transaction: the staged, rollback-safe core of link / relink.
// One DeployTransaction owns a single program deployment and walks it
// through explicit phases:
//
//   compile (caller) -> reserve -> plan-entries -> stage -> commit
//                                                        \-> rollback
//
// reserve() takes memory blocks and table-entry reservations from the
// resource manager; plan_entries() binds the IR to concrete RPB entries;
// stage() builds the declarative op-log (dp::WriteBatch) — relink
// carry-over memory writes first, then the consistent-update install order —
// WITHOUT touching the dataplane; commit() hands the batch to the update
// engine, whose rollback journal guarantees a fault at any write index
// leaves the dataplane byte-identical. rollback() (also run by the
// destructor on abandonment) returns every reservation; after it, no trace
// of the transaction remains anywhere but the audit log.
//
// Locking discipline: a transaction is single-threaded and must run under
// the controller's session lock from reserve() onward — compile/solve are
// the only phases safe to run concurrently (they work on snapshots).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"
#include "compiler/entrygen.h"
#include "compiler/ir.h"
#include "compiler/solver.h"
#include "control/resource_manager.h"
#include "control/update_engine.h"
#include "dataplane/runpro_dataplane.h"
#include "dataplane/write_op.h"

namespace p4runpro::obs {
struct Telemetry;
}

namespace p4runpro::ctrl {

/// Everything a transaction acts on. The references outlive the transaction
/// (they are the controller's members).
struct DeployContext {
  dp::RunproDataplane& dataplane;
  ResourceManager& resources;
  UpdateEngine& updates;
  obs::Telemetry* telemetry = nullptr;  ///< null: span-free (worker threads)
};

class DeployTransaction {
 public:
  enum class Phase : std::uint8_t {
    Compiled,    ///< inputs bound, nothing reserved yet
    Reserved,    ///< memory blocks + table entries held
    Planned,     ///< entry plan generated against the reservations
    Staged,      ///< op-log built, dataplane still untouched
    Submitted,   ///< op-log in flight on the async channel (writer thread)
    Committed,   ///< op-log executed; resources belong to the program now
    RolledBack,  ///< every reservation returned
  };

  /// `replacing` != 0 marks an incremental update: stage() carries over the
  /// contents of virtual memories shared with the old version.
  DeployTransaction(DeployContext ctx, const rp::TranslatedProgram& ir,
                    rp::AllocationResult alloc, ProgramId id,
                    int filter_priority, ProgramId replacing = 0);

  /// Abandoning an uncommitted transaction rolls it back.
  ~DeployTransaction();
  DeployTransaction(const DeployTransaction&) = delete;
  DeployTransaction& operator=(const DeployTransaction&) = delete;

  /// Reserve memory blocks (first-fit at the allocation's pinned stages)
  /// and table entries per physical RPB. On failure everything reserved so
  /// far is returned and the transaction is RolledBack.
  Status reserve();
  /// Generate the entry plan (entrygen) against the reserved placements.
  void plan_entries();
  /// Build the op-log: carry-over WriteMemRange ops first (relink), then
  /// the install sequence in consistent-update order.
  void stage();
  /// Execute the op-log through the update engine. On success the program
  /// is recorded with the resource manager and announced to the monitor; on
  /// failure the engine's journal has already unwound the dataplane and
  /// this transaction rolls its reservations back before returning. In
  /// async mode this routes through commit_submit + commit_finish inline.
  Result<InstalledProgram> commit();

  // --- split commit (async channel) --------------------------------------
  // The pipelined paths separate submission from settlement so a session
  // can release its lock (or submit the next hop) while the writer drains
  // the channel:
  //   commit_submit()  — under the session lock: hand the op-log to the
  //                      writer, phase -> Submitted, return immediately.
  //   commit_wait()    — OPTIONAL, lock-free: block until the writer
  //                      signals completion (no shared state touched).
  //   commit_finish()  — under the session lock: settle the write (clock
  //                      advance, telemetry replay), then the same
  //                      success/rollback handling as commit().
  // Requires the context's update engine to be in async mode.

  /// Submit the staged op-log to the engine's writer thread. Caller must
  /// hold the session lock and must keep this transaction alive until
  /// commit_finish (the in-flight job references the staged batch).
  void commit_submit();
  /// Block until the submitted write completes. Safe to call WITHOUT the
  /// session lock — this is the point a session parks while other sessions
  /// (or other hops) use the lock and the channel.
  void commit_wait();
  /// Settle the submitted write under the session lock: on success record +
  /// announce the program (phase Committed); on a writer-reported fault the
  /// dataplane is already unwound — roll reservations back and return the
  /// error.
  Result<InstalledProgram> commit_finish();
  /// Virtual milliseconds the write spent on the channel, from submission
  /// to completion (valid after commit_finish). The pipelined chain uses it
  /// to report per-hop channel occupancy.
  [[nodiscard]] double channel_ms() const noexcept { return channel_ms_; }
  /// Release reservations (idempotent; no-op once Committed).
  void rollback();

  [[nodiscard]] Phase phase() const noexcept { return phase_; }
  [[nodiscard]] ProgramId id() const noexcept { return id_; }
  [[nodiscard]] const std::map<std::string, VmemPlacement>& placements() const noexcept {
    return placements_;
  }
  [[nodiscard]] const rp::EntryPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const dp::WriteBatch& staged_batch() const noexcept { return batch_; }

 private:
  /// Shared tail of commit()/commit_finish(): on success build + record +
  /// announce the InstalledProgram; on failure roll reservations back.
  Result<InstalledProgram> finalize(Result<UpdateEngine::AppliedEntries> applied);

  DeployContext ctx_;
  const rp::TranslatedProgram& ir_;
  rp::AllocationResult alloc_;
  ProgramId id_;
  int filter_priority_;
  ProgramId replacing_;

  Phase phase_ = Phase::Compiled;
  std::map<std::string, VmemPlacement> placements_;
  std::map<int, std::uint32_t> reserved_entries_;  ///< rpb -> count held
  rp::EntryPlan plan_;
  dp::WriteBatch batch_;
  UpdateEngine::PendingWrite pending_;  ///< valid while Submitted
  double channel_ms_ = 0.0;
};

}  // namespace p4runpro::ctrl
