#include "control/trace_report.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/telemetry.h"
#include "obs/trace_context.h"

namespace p4runpro::ctrl {

namespace {

[[nodiscard]] const std::string* find_arg(const obs::SpanRecord& span,
                                          std::string_view key) {
  for (const auto& [k, v] : span.args) {
    if (k == key) return &v;
  }
  return nullptr;
}

[[nodiscard]] std::uint64_t arg_u64(const obs::SpanRecord& span,
                                    std::string_view key, std::uint64_t fallback) {
  const std::string* raw = find_arg(span, key);
  if (raw == nullptr) return fallback;
  return static_cast<std::uint64_t>(std::strtoull(raw->c_str(), nullptr, 10));
}

[[nodiscard]] std::string_view event_label(obs::MonitorEvent::Kind kind) noexcept {
  switch (kind) {
    case obs::MonitorEvent::Kind::Deploy: return "deploy";
    case obs::MonitorEvent::Kind::Revoke: return "revoke";
    case obs::MonitorEvent::Kind::Alert: return "alert";
    case obs::MonitorEvent::Kind::TxnCommit: return "txn commit";
    case obs::MonitorEvent::Kind::TxnRollback: return "txn rollback";
    case obs::MonitorEvent::Kind::ChainTxnCommit: return "chain txn commit";
    case obs::MonitorEvent::Kind::ChainTxnRollback: return "chain txn rollback";
  }
  return "?";
}

[[nodiscard]] std::string ms_fixed(double ms) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}

}  // namespace

TraceReport collect_trace(const obs::Telemetry& telemetry,
                          std::uint64_t trace_id) {
  TraceReport report;
  report.trace_id = trace_id;
  if (trace_id == 0) return report;  // 0 is the "no trace" sentinel

  for (const auto& span : telemetry.tracer.spans()) {
    if (span.trace != trace_id) continue;
    report.spans.push_back(span);
    if (span.name == "bfrt.batch") {
      TraceWrite write;
      write.hop = static_cast<int>(
          arg_u64(span, "hop", static_cast<std::uint64_t>(-1)));
      if (const std::string* what = find_arg(span, "what")) write.what = *what;
      write.entries = arg_u64(span, "entries", 0);
      write.batch_index = report.writes.size();
      report.writes.push_back(std::move(write));
    }
  }
  for (const auto& event : telemetry.monitor.events()) {
    if (event.trace == trace_id) report.events.push_back(event);
  }
  for (const auto& journey : telemetry.flight.journeys()) {
    if (journey.table_trace == trace_id) report.journeys.push_back(journey);
  }
  return report;
}

std::string trace_report(const obs::Telemetry& telemetry,
                         std::uint64_t trace_id) {
  const TraceReport report = collect_trace(telemetry, trace_id);
  std::ostringstream out;
  out << "trace " << obs::format_trace_id(trace_id);
  if (!report.found()) {
    out << ": nothing recorded under this id (never minted, or from a "
           "cleared telemetry epoch)\n";
    return out.str();
  }
  if (!report.root_name().empty()) out << " (" << report.root_name() << ")";
  out << "\n";

  if (!report.spans.empty()) {
    out << "  control spans:\n";
    for (const auto& span : report.spans) {
      out << "    ";
      for (int d = 0; d < span.depth; ++d) out << "  ";
      out << span.name;
      if (!span.cat.empty()) out << " [" << span.cat << "]";
      out << " " << ms_fixed(span.virtual_ms()) << "ms";
      if (const std::string* what = find_arg(span, "what")) {
        out << " what=" << *what;
      }
      if (const std::string* hop = find_arg(span, "hop")) {
        out << " hop=" << *hop;
      }
      if (const std::string* entries = find_arg(span, "entries")) {
        out << " entries=" << *entries;
      }
      out << "\n";
    }
  }

  if (!report.writes.empty()) {
    out << "  control-channel writes:\n";
    for (const auto& write : report.writes) {
      out << "    write " << write.batch_index;
      if (write.hop >= 0) out << " hop " << write.hop;
      out << ": " << write.what << " (" << write.entries << " entries)\n";
    }
  }

  if (!report.events.empty()) {
    out << "  monitor events:\n";
    for (const auto& event : report.events) {
      out << "    t=" << ms_fixed(event.t_ms) << "ms " << event_label(event.kind);
      if (!event.program_name.empty()) out << " '" << event.program_name << "'";
      if (event.program != 0) out << " id=" << event.program;
      if (event.kind == obs::MonitorEvent::Kind::ChainTxnCommit ||
          event.kind == obs::MonitorEvent::Kind::ChainTxnRollback) {
        out << " hops=" << event.hops;
      }
      if (event.kind == obs::MonitorEvent::Kind::ChainTxnRollback) {
        out << " faulted_hop=" << event.faulted_hop;
      }
      if (event.kind == obs::MonitorEvent::Kind::Alert) {
        out << " rule=" << event.rule;
        if (!event.series.empty()) out << " series=" << event.series;
      }
      if (!event.detail.empty()) out << " detail=\"" << event.detail << "\"";
      out << "\n";
    }
  }

  if (!report.journeys.empty()) {
    out << "  packet journeys against this operation's tables:\n";
    for (const auto& journey : report.journeys) {
      out << "    pkt seq=" << journey.seq << " t=" << ms_fixed(journey.t_ms)
          << "ms program='" << journey.program_name << "' fate="
          << obs::fate_name(journey.fate)
          << " table_generation=" << journey.table_generation
          << " events=" << journey.events.size() << "\n";
    }
  }
  return out.str();
}

}  // namespace p4runpro::ctrl
