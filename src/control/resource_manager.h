// Resource manager (paper §3.1): maintains dynamic resource usage — free
// memory partitions per RPB (doubly-linked free lists, continuous
// allocation only), free table entries per RPB — plus the per-program
// allocation records used for virtual->physical address translation and
// memory monitoring.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "dataplane/dataplane_spec.h"
#include "dataplane/runpro_dataplane.h"

namespace p4runpro::obs {
struct Telemetry;
}

namespace p4runpro::ctrl {

/// A contiguous physical memory block inside one RPB's stage memory.
struct MemBlock {
  std::uint32_t base = 0;
  std::uint32_t size = 0;

  friend bool operator==(const MemBlock&, const MemBlock&) = default;
};

/// Where one virtual memory block of a program landed.
struct VmemPlacement {
  int rpb = 0;  // physical RPB id (1-based)
  MemBlock block;

  friend bool operator==(const VmemPlacement&, const VmemPlacement&) = default;
};

class ResourceManager {
 public:
  explicit ResourceManager(const dp::DataplaneSpec& spec);

  // --- allocator-facing snapshot ---------------------------------------

  /// Immutable view of free resources used by the allocation solver. The
  /// solver runs against the snapshot; commits go through the manager.
  struct Snapshot {
    std::vector<std::uint32_t> free_entries;            // [rpb-1]
    std::vector<std::vector<MemBlock>> free_mem;        // [rpb-1], sorted by base

    /// Can `sizes` all be carved (first-fit, in order) out of the given
    /// RPB's free list?
    [[nodiscard]] bool can_allocate(int rpb, std::span<const std::uint32_t> sizes) const;
  };
  [[nodiscard]] Snapshot snapshot() const;

  // --- committing -------------------------------------------------------

  /// First-fit allocation of a contiguous block; fails when no free
  /// partition is large enough (external fragmentation, §7).
  Result<MemBlock> allocate_memory(int rpb, std::uint32_t size);
  /// Return a block to the free list, coalescing with neighbours.
  void free_memory(int rpb, const MemBlock& block);
  /// Carve a *specific* block back out of the free list (rollback of a
  /// revoke transaction: the freed block must return to exactly its old
  /// place so the pre-transaction occupancy is byte-identical). Fails with
  /// Conflict when any part of the range has been re-allocated meanwhile —
  /// impossible under the commit lock, so a failure indicates a journal bug.
  Status reclaim_block(int rpb, const MemBlock& block);
  /// Take a block out of circulation during program termination; it stays
  /// unavailable until `unlock_memory` (lock-and-reset, Fig. 6 step 4).
  void lock_memory(int rpb, const MemBlock& block);
  void unlock_memory(int rpb, const MemBlock& block);

  Status reserve_entries(int rpb, std::uint32_t count);
  void release_entries(int rpb, std::uint32_t count);

  // --- per-program records ----------------------------------------------

  void record_program(ProgramId id, std::map<std::string, VmemPlacement> placements);
  void erase_program(ProgramId id);
  [[nodiscard]] const std::map<std::string, VmemPlacement>* program_placements(
      ProgramId id) const;

  /// Control-plane memory access with virtual->physical translation
  /// (paper §3.2): read/write bucket `vaddr` of `vmem` of program `id`.
  [[nodiscard]] Result<Word> read_virtual(const dp::RunproDataplane& dataplane,
                                          ProgramId id, const std::string& vmem,
                                          MemAddr vaddr) const;
  Status write_virtual(dp::RunproDataplane& dataplane, ProgramId id,
                       const std::string& vmem, MemAddr vaddr, Word value) const;

  // --- utilization metrics (Fig. 8 / 18 / 19) ----------------------------

  [[nodiscard]] std::uint32_t entries_used(int rpb) const;
  [[nodiscard]] std::uint32_t memory_used(int rpb) const;
  [[nodiscard]] double total_entry_utilization() const;
  [[nodiscard]] double total_memory_utilization() const;
  [[nodiscard]] const dp::DataplaneSpec& spec() const noexcept { return spec_; }

  /// Programs with a virtual memory pinned on this RPB — i.e. how many
  /// programs occupy the stage's SALU and hash unit (one of each per stage).
  [[nodiscard]] std::uint32_t stateful_programs(int rpb) const;

  /// External fragmentation of one RPB's stage memory: free words minus the
  /// largest free block — the words that exist but cannot serve a maximal
  /// contiguous request (§7; the defrag pass drives this toward zero).
  [[nodiscard]] std::uint64_t fragmentation_words(int rpb) const;
  [[nodiscard]] std::uint64_t total_fragmentation_words() const;
  /// Largest contiguous free block of one RPB (0 when fully used).
  [[nodiscard]] std::uint32_t largest_free_block(int rpb) const;

  /// Publish per-stage occupancy gauges ("ctrl.rpb.NN.{tcam_used,sram_used,
  /// salu_programs,hash_programs}") and the total-utilization gauges as
  /// sampled probes of `telemetry`'s registry; the manager stays the source
  /// of truth. The destructor unregisters.
  void attach_telemetry(obs::Telemetry* telemetry);

  ~ResourceManager();
  ResourceManager(const ResourceManager&) = delete;
  ResourceManager& operator=(const ResourceManager&) = delete;

 private:
  [[nodiscard]] std::list<MemBlock>& free_list(int rpb);
  [[nodiscard]] const std::list<MemBlock>& free_list(int rpb) const;
  void insert_coalesced(std::list<MemBlock>& list, MemBlock block);
  /// Feed the health monitor's stage-occupancy watermark rules on every
  /// entry reserve/release (no-op without attached telemetry).
  void push_occupancy(int rpb, std::uint32_t used);

  dp::DataplaneSpec spec_;
  obs::Telemetry* telemetry_ = nullptr;
  std::vector<std::list<MemBlock>> free_mem_;       // [rpb-1]
  std::vector<std::uint32_t> entries_used_;         // [rpb-1]
  std::vector<std::uint32_t> memory_used_;          // [rpb-1]
  std::map<ProgramId, std::map<std::string, VmemPlacement>> programs_;
};

}  // namespace p4runpro::ctrl
