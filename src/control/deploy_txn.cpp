#include "control/deploy_txn.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

#include "obs/telemetry.h"

namespace p4runpro::ctrl {

DeployTransaction::DeployTransaction(DeployContext ctx,
                                     const rp::TranslatedProgram& ir,
                                     rp::AllocationResult alloc, ProgramId id,
                                     int filter_priority, ProgramId replacing)
    : ctx_(ctx),
      ir_(ir),
      alloc_(std::move(alloc)),
      id_(id),
      filter_priority_(filter_priority),
      replacing_(replacing) {}

DeployTransaction::~DeployTransaction() {
  if (phase_ == Phase::Submitted) {
    // Abandoning an in-flight transaction would leave the writer's job
    // referencing our staged batch: settle it first. (The write completes —
    // submission is the commit point on the async channel.)
    (void)commit_finish();
  }
  if (phase_ != Phase::Committed && phase_ != Phase::RolledBack) rollback();
}

Status DeployTransaction::reserve() {
  assert(phase_ == Phase::Compiled);
  auto reserve_span = obs::span(ctx_.telemetry, "txn.reserve", "ctrl");

  // Memory blocks at the allocation's pinned stages.
  for (const auto& [vmem, rpb] : alloc_.vmem_rpb) {
    auto block = ctx_.resources.allocate_memory(rpb, ir_.vmem_sizes.at(vmem));
    if (!block.ok()) {
      rollback();
      return block.error();
    }
    placements_[vmem] = VmemPlacement{rpb, block.value()};
  }

  // Table entries per physical RPB. The counts mirror generate_entries
  // exactly (one entry per node, one per case of a branch) so reservation
  // can precede planning; plan_entries() asserts the match.
  const int total_rpbs = ctx_.dataplane.spec().total_rpbs();
  std::map<int, std::uint32_t> counts;
  for (const auto& node : ir_.nodes) {
    const int logical = alloc_.x[static_cast<std::size_t>(node.depth - 1)];
    const int phys = dp::physical_rpb(logical, total_rpbs);
    counts[phys] += node.op.kind == dp::OpKind::Branch
                        ? static_cast<std::uint32_t>(node.op.cases.size())
                        : 1u;
  }
  for (const auto& [rpb, count] : counts) {
    if (auto s = ctx_.resources.reserve_entries(rpb, count); !s.ok()) {
      rollback();
      return s.error();
    }
    reserved_entries_[rpb] = count;
  }
  phase_ = Phase::Reserved;
  return {};
}

void DeployTransaction::plan_entries() {
  assert(phase_ == Phase::Reserved);
  auto entrygen_span = obs::span(ctx_.telemetry, "entrygen", "ctrl");
  plan_ = rp::generate_entries(ir_, alloc_, id_, placements_, ctx_.dataplane.spec());
  plan_.filter_priority = filter_priority_;
  entrygen_span.arg("rpb_entries",
                    static_cast<std::uint64_t>(plan_.rpb_entries.size()));

#ifndef NDEBUG
  std::map<int, std::uint32_t> planned;
  for (const auto& e : plan_.rpb_entries) ++planned[e.rpb];
  assert(planned == reserved_entries_ &&
         "reservation counts diverged from the generated plan");
#endif
  phase_ = Phase::Planned;
}

void DeployTransaction::stage() {
  assert(phase_ == Phase::Planned);
  auto stage_span = obs::span(ctx_.telemetry, "txn.stage", "ctrl");

  // Incremental update: carry over the contents of virtual memories that
  // survive the version change. Staged as WriteMemRange ops ahead of the
  // install sequence — their RestoreMemRange inverses make a mid-install
  // fault unwind the copies too (the old bytes of the target blocks come
  // back, so freed memory is returned exactly as it was).
  if (replacing_ != 0) {
    if (const auto* old_placements = ctx_.resources.program_placements(replacing_)) {
      for (const auto& [vmem, placement] : placements_) {
        const auto old_it = old_placements->find(vmem);
        if (old_it == old_placements->end()) continue;
        const std::uint32_t count =
            std::min(placement.block.size, old_it->second.block.size);
        const auto& old_mem = ctx_.dataplane.rpb(old_it->second.rpb).memory();
        std::vector<Word> words;
        words.reserve(count);
        for (std::uint32_t a = 0; a < count; ++a) {
          words.push_back(old_mem.read(old_it->second.block.base + a));
        }
        batch_.write_mem_range(placement.rpb, placement.block.base,
                               std::move(words), vmem);
      }
    }
  }

  rp::stage_install(plan_, batch_);
  stage_span.arg("ops", static_cast<std::uint64_t>(batch_.size()));
  phase_ = Phase::Staged;
}

Result<InstalledProgram> DeployTransaction::commit() {
  assert(phase_ == Phase::Staged);
  if (ctx_.updates.async()) {
    // Single-call flows in async mode submit and settle inline; only the
    // pipelined paths use the split directly.
    commit_submit();
    return commit_finish();
  }
  auto commit_span = obs::span(ctx_.telemetry, "txn.commit", "ctrl");
  commit_span.arg("ops", static_cast<std::uint64_t>(batch_.size()));
  return finalize(ctx_.updates.execute_install(batch_));
}

void DeployTransaction::commit_submit() {
  assert(phase_ == Phase::Staged);
  assert(ctx_.updates.async() && "commit_submit requires an async update engine");
  {
    // Closed immediately: the channel time is reported by the bfrt spans the
    // finish replays, not by the submission.
    auto commit_span = obs::span(ctx_.telemetry, "txn.commit", "ctrl");
    commit_span.arg("ops", static_cast<std::uint64_t>(batch_.size()));
    commit_span.arg("async", "1");
  }
  pending_ = ctx_.updates.submit_install(batch_);
  phase_ = Phase::Submitted;
}

void DeployTransaction::commit_wait() {
  assert(phase_ == Phase::Submitted);
  pending_.done.wait();
}

Result<InstalledProgram> DeployTransaction::commit_finish() {
  assert(phase_ == Phase::Submitted);
  auto applied = ctx_.updates.finish_install(pending_);
  channel_ms_ = static_cast<double>(pending_.outcome->completion_ns -
                                    pending_.submitted_ns) /
                1e6;
  phase_ = Phase::Staged;  // settled; finalize() decides Committed/RolledBack
  return finalize(std::move(applied));
}

Result<InstalledProgram> DeployTransaction::finalize(
    Result<UpdateEngine::AppliedEntries> applied) {
  if (!applied.ok()) {
    // The engine's journal already restored the dataplane; return the
    // reservations so nothing of the transaction survives.
    rollback();
    return applied.error();
  }

  InstalledProgram out;
  out.id = id_;
  out.name = ir_.name;
  out.ir = ir_;
  out.alloc = std::move(alloc_);
  out.plan = plan_;
  out.placements = placements_;
  auto entries = std::move(applied).take();
  out.filter_handles = std::move(entries.filter_handles);
  out.rpb_handles = std::move(entries.rpb_handles);
  out.recirc_handles = std::move(entries.recirc_handles);

  ctx_.resources.record_program(id_, placements_);
  ctx_.updates.announce_deploy(out);
  phase_ = Phase::Committed;
  return out;
}

void DeployTransaction::rollback() {
  if (phase_ == Phase::Committed || phase_ == Phase::RolledBack) return;
  auto rollback_span = obs::span(ctx_.telemetry, "txn.rollback", "ctrl");
  for (const auto& [rpb, count] : reserved_entries_) {
    ctx_.resources.release_entries(rpb, count);
  }
  reserved_entries_.clear();
  for (const auto& [vmem, placement] : placements_) {
    ctx_.resources.free_memory(placement.rpb, placement.block);
  }
  placements_.clear();
  phase_ = Phase::RolledBack;
}

}  // namespace p4runpro::ctrl
