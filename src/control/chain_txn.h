// Chain transaction: the two-phase, chain-wide extension of
// ctrl::DeployTransaction. One ChainTransaction owns a single program
// deployment across every hop of a dp::SwitchChain (mirror mode: the same
// program, the same allocation, on every switch) and guarantees the
// paper's update-consistency property end to end:
//
//   phase 1 (stage_all): per-hop reserve -> plan -> stage. Reservations and
//     op-logs are built on EVERY hop before a single control-channel write
//     lands anywhere; any hop's AllocFailed / staging error aborts the
//     whole chain with nothing but reservation churn to undo.
//   phase 2 (commit_all): execute each hop's staged op-log through that
//     hop's UpdateEngine, hop by hop. A channel fault at ANY (hop, write
//     index) pair unwinds: the faulted hop is restored by its engine's
//     rollback journal, and every hop committed before it is un-committed
//     (consistent remove + reservation release + residual-byte restore),
//     leaving the whole chain byte-identical to its pre-transaction state.
//
// Residual bytes: un-committing a hop runs the consistent-remove path,
// whose lock-and-reset step zeroes the program's memory blocks — but the
// pre-transaction bytes of those (then-free) blocks were not necessarily
// zero. stage_all() therefore captures the residual contents of every
// reserved block, and the unwind writes them back after the remove, so the
// "byte-identical" guarantee covers free memory too.
//
// Locking discipline: like DeployTransaction, a chain transaction is
// single-threaded and must run under the chain controller's session lock
// from stage_all() onward; only the per-hop allocation solving that feeds
// it may run concurrently (on snapshots).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "control/deploy_txn.h"

namespace p4runpro::ctrl {

/// One hop's execution context (pointers owned by the chain controller and
/// outliving the transaction).
struct ChainHop {
  dp::RunproDataplane* dataplane = nullptr;
  ResourceManager* resources = nullptr;
  UpdateEngine* updates = nullptr;
};

class ChainTransaction {
 public:
  enum class Phase : std::uint8_t {
    Solved,      ///< per-hop allocations bound, nothing reserved yet
    Staged,      ///< every hop reserved + staged, no dataplane writes yet
    Committed,   ///< op-logs executed on every hop
    RolledBack,  ///< chain-wide pre-transaction state restored
  };

  /// `allocs` is positional: allocs[h] is hop h's allocation (the caller
  /// verified they agree on rounds — mirror mode). `replacing` != 0 marks
  /// an incremental update carried out per hop (see DeployTransaction).
  ChainTransaction(std::vector<ChainHop> hops, const rp::TranslatedProgram& ir,
                   std::vector<rp::AllocationResult> allocs, ProgramId id,
                   int filter_priority, ProgramId replacing,
                   obs::Telemetry* telemetry);

  /// Abandoning an uncommitted chain transaction rolls it back.
  ~ChainTransaction();
  ChainTransaction(const ChainTransaction&) = delete;
  ChainTransaction& operator=(const ChainTransaction&) = delete;

  /// Phase 1: reserve, plan and stage on every hop. On any hop's failure
  /// every hop's reservations are returned and the transaction is
  /// RolledBack (faulted_hop() names the hop that failed).
  Status stage_all();

  /// Phase 2: execute the staged op-logs hop by hop. On a fault the whole
  /// chain is restored (see class comment) and the transaction is
  /// RolledBack; faulted_hop() names the hop whose write failed.
  ///
  /// Pipelined mode: when EVERY hop's update engine is async, phase 2
  /// submits all hops' op-logs up front and the per-hop writer threads
  /// drain their channels concurrently — chain update latency becomes
  /// max(per-hop channel time) instead of the sum. Consistency is
  /// unchanged: each hop's op-log still runs in consistent-update order on
  /// its own channel (filters land last per hop), settlement is in hop
  /// order, and a fault on any hop still restores the whole chain
  /// byte-identically (committed hops are un-committed whether they settled
  /// before or after the faulted one).
  Status commit_all();

  /// Release phase-1 reservations on every hop (idempotent; no-op once
  /// Committed).
  void rollback_all();

  /// Un-commit a COMMITTED transaction: consistently remove the program
  /// from every hop (reverse hop order), release its resources and restore
  /// residual bytes. Used by the chain controller's relink when retiring
  /// the old version faults after the new version already committed
  /// chain-wide. The unwind itself must not fault (single-fault model, the
  /// same assumption the single-switch journal unwind makes).
  void unwind_commit();

  [[nodiscard]] Phase phase() const noexcept { return phase_; }
  [[nodiscard]] ProgramId id() const noexcept { return id_; }
  [[nodiscard]] int length() const noexcept { return static_cast<int>(hops_.size()); }
  /// Hop whose reserve/commit failed; -1 while nothing faulted.
  [[nodiscard]] int faulted_hop() const noexcept { return faulted_hop_; }
  /// Per-hop installed programs; valid only while Committed.
  [[nodiscard]] std::vector<InstalledProgram>& installed() noexcept { return installed_; }
  /// Staged op count of one hop (valid once Staged).
  [[nodiscard]] std::size_t staged_ops(int hop) const;
  /// Total staged ops across the chain.
  [[nodiscard]] std::size_t total_staged_ops() const;

 private:
  /// Pre-transaction contents of one reserved block (captured in phase 1).
  struct Residual {
    std::string vmem;
    VmemPlacement placement;
    std::vector<Word> words;
  };

  /// Un-commit one hop: consistent remove, release entries, erase the
  /// program record, restore the blocks' residual bytes.
  void unwind_committed_hop(int hop);
  /// Same, for a program not (yet) adopted into installed_ — the pipelined
  /// fault path unwinds hops that settled successfully around the fault.
  void unwind_committed_hop(int hop, InstalledProgram& program);

  std::vector<ChainHop> hops_;
  const rp::TranslatedProgram& ir_;
  std::vector<rp::AllocationResult> allocs_;
  ProgramId id_;
  int filter_priority_;
  ProgramId replacing_;
  obs::Telemetry* telemetry_;

  Phase phase_ = Phase::Solved;
  int faulted_hop_ = -1;
  std::vector<std::unique_ptr<DeployTransaction>> txns_;   // [hop]
  std::vector<std::vector<Residual>> residuals_;           // [hop]
  std::vector<InstalledProgram> installed_;                // [hop], when Committed
};

}  // namespace p4runpro::ctrl
