// Session-lock occupancy instrumentation. A LockHoldTimer spans one locked
// control session and observes the VIRTUAL milliseconds the session lock
// was actually held into the "ctrl.commit.lock_hold_ms" histogram — the
// async channel's headline win: a pipelined commit parks off-lock while the
// writer drains the channel, so its lock-hold time collapses to the
// submit + settle slivers even though the deployment's update delay is
// unchanged. pause()/resume() bracket the unlocked park so the histogram
// reports held time, not wall-to-wall session time.
#pragma once

#include "common/clock.h"
#include "obs/telemetry.h"

namespace p4runpro::ctrl {

class LockHoldTimer {
 public:
  /// Start timing (call with the lock held). Null telemetry = inert.
  LockHoldTimer(SimClock& clock, obs::Telemetry* telemetry)
      : clock_(clock), telemetry_(telemetry), start_ms_(clock.now_ms()) {}
  LockHoldTimer(const LockHoldTimer&) = delete;
  LockHoldTimer& operator=(const LockHoldTimer&) = delete;

  ~LockHoldTimer() {
    if (telemetry_ == nullptr) return;
    if (!paused_) held_ms_ += clock_.now_ms() - start_ms_;
    telemetry_->metrics.histogram("ctrl.commit.lock_hold_ms").observe(held_ms_);
  }

  /// Call immediately before releasing the lock mid-session.
  void pause() {
    if (paused_) return;
    held_ms_ += clock_.now_ms() - start_ms_;
    paused_ = true;
  }
  /// Call immediately after re-acquiring the lock.
  void resume() {
    if (!paused_) return;
    start_ms_ = clock_.now_ms();
    paused_ = false;
  }

 private:
  SimClock& clock_;
  obs::Telemetry* telemetry_;
  double start_ms_;
  double held_ms_ = 0.0;
  bool paused_ = false;
};

}  // namespace p4runpro::ctrl
