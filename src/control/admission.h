// Admission controller for concurrent link sessions: bounds the number of
// in-flight reservations and schedules queued sessions across tenants with
// weighted fair queuing, shedding arrivals past the queue bound instead of
// letting them solve-retry-spin against a full switch (ROADMAP
// "Multi-tenant control plane at scale").
//
// Scheduling: start-time fair queuing over a virtual clock. Each arrival is
// stamped with a virtual finish time F = max(V, F_last[tenant]) + 1/weight;
// the waiter with the smallest F is granted first and advances V to its F.
// A tenant that was idle re-enters at the current V (no banked credit), so
// a heavy tenant's backlog cannot starve a light one: between any two
// grants of tenant A, every backlogged tenant B receives ~weight_B/weight_A
// grants. FIFO order within a tenant (ties broken by arrival seq).
//
// States of a session: granted immediately (slot free, queue empty) ->
// Admitted; queued (slot full, queue below bound) -> blocks in acquire()
// until granted; shed (queue at bound) -> acquire() returns AdmissionShed
// without blocking. Every grant must be released exactly once.
//
// Thread safety: internally synchronized. The admission mutex is a leaf
// lock and is NEVER held together with a controller session lock — callers
// acquire admission before taking the session lock and release after
// dropping it, so a granted session can park on the async channel without
// blocking admission bookkeeping. Deadlock-free by construction: a slot
// holder never waits on admission, so grants always drain.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>

#include "common/result.h"
#include "control/tenant.h"

namespace p4runpro::ctrl {

struct AdmissionConfig {
  /// Sessions allowed past admission concurrently (reservation in flight).
  int max_inflight = 8;
  /// Waiters allowed in the fair queue; arrivals beyond are shed.
  int max_queued = 256;
};

class AdmissionController {
 public:
  AdmissionController() = default;
  explicit AdmissionController(AdmissionConfig config) : config_(config) {}

  struct Grant {
    std::uint64_t seq = 0;     ///< global admission order (1-based)
    bool queued = false;       ///< false: granted immediately on arrival
  };

  /// Admit a session for `tenant`. Returns immediately with a grant when a
  /// slot is free and nobody is queued; blocks until granted when queued;
  /// fails with AdmissionShed (without blocking) when the queue is at its
  /// bound. `weight` is the tenant's fair share (values <= 0 count as 1).
  Result<Grant> acquire(TenantId tenant, double weight);

  /// Return a granted slot; wakes the fairest waiter. Exactly once per
  /// successful acquire.
  void release();

  /// Reconfigure the bounds. Call with no session in flight.
  void set_config(AdmissionConfig config);
  [[nodiscard]] AdmissionConfig config() const;

  // --- stats (each takes the internal mutex; safe from metric probes) ----
  [[nodiscard]] int inflight() const;
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] std::uint64_t grants() const;
  [[nodiscard]] std::uint64_t sheds() const;
  [[nodiscard]] std::uint64_t tenant_grants(TenantId tenant) const;
  [[nodiscard]] std::uint64_t tenant_sheds(TenantId tenant) const;

 private:
  struct Waiter {
    TenantId tenant = 0;
    double vfinish = 0.0;
    std::uint64_t arrival = 0;  ///< FIFO tiebreak within equal vfinish
    bool granted = false;
    std::uint64_t grant_seq = 0;
  };

  /// Fill free slots with the fairest waiters (min vfinish, then arrival).
  void grant_waiters_locked();
  [[nodiscard]] double stamp_finish_locked(TenantId tenant, double weight);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  AdmissionConfig config_;
  int inflight_ = 0;
  double vtime_ = 0.0;
  std::uint64_t next_arrival_ = 0;
  std::uint64_t next_grant_ = 0;
  std::uint64_t sheds_ = 0;
  std::list<Waiter> waiters_;  ///< stable addresses: acquire blocks on its node
  std::map<TenantId, double> last_finish_;
  std::map<TenantId, std::uint64_t> tenant_grants_;
  std::map<TenantId, std::uint64_t> tenant_sheds_;
};

}  // namespace p4runpro::ctrl
