// Cross-tier causal trace report (the observability counterpart of the
// rollback journal): given one trace id — minted by obs::TraceScope at a
// Controller/ChainController entry point and propagated into tracer spans,
// monitor events, per-hop bfrt write spans and the data plane's table
// generation — assemble the operation's whole story from the telemetry
// bundle. The report links the control-plane side (phase spans, txn
// commit/rollback events, per-hop write batches) with the data-plane side
// (flight-recorder journeys of packets that executed against the table
// state this operation installed), e.g. "this packet's journey ran against
// tables installed by chain txn T, hop 2, write batch 17".
//
// Ids are epoch-local: Telemetry::clear() restarts minting at 1, so a
// recycled id resolves to whatever the *current* epoch recorded under it
// (typically nothing). An id never minted yields an empty report with
// found() == false.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/monitor.h"
#include "obs/trace.h"

namespace p4runpro::obs {
struct Telemetry;
}

namespace p4runpro::ctrl {

/// One control-channel write batch of the traced operation (a "bfrt.batch"
/// span), with the chain hop it landed on when known.
struct TraceWrite {
  int hop = -1;          ///< chain hop index; -1 = single-switch engine
  std::string what;      ///< batch kind: add.rpb, del.filters, ...
  std::uint64_t entries = 0;
  std::size_t batch_index = 0;  ///< position among the trace's write batches
};

/// Everything the telemetry bundle recorded under one trace id.
struct TraceReport {
  std::uint64_t trace_id = 0;
  /// Spans of the operation, recording order (the first is the entry-point
  /// root, e.g. "chain_link").
  std::vector<obs::SpanRecord> spans;
  /// Control-channel write batches extracted from the "bfrt.batch" spans.
  std::vector<TraceWrite> writes;
  /// Monitor events stamped with the id: deploy/revoke lifecycle, txn
  /// commit/rollback, and alerts attributed to this operation's tables.
  std::vector<obs::MonitorEvent> events;
  /// Flight-recorder journeys of packets that executed against table state
  /// this operation installed (journey.table_trace == trace_id).
  std::vector<obs::PacketJourney> journeys;

  /// True when anything at all was recorded under the id.
  [[nodiscard]] bool found() const noexcept {
    return !spans.empty() || !events.empty() || !journeys.empty();
  }
  /// Name of the root (entry-point) span, "" when none was recorded.
  [[nodiscard]] std::string root_name() const {
    return spans.empty() ? std::string{} : spans.front().name;
  }
};

/// Collect the structured report for `trace_id` from the bundle.
[[nodiscard]] TraceReport collect_trace(const obs::Telemetry& telemetry,
                                        std::uint64_t trace_id);

/// Render the report as a human-readable multi-line story (deterministic
/// for identical bundle contents). Unknown/empty ids render a one-line
/// "nothing recorded" notice.
[[nodiscard]] std::string trace_report(const obs::Telemetry& telemetry,
                                       std::uint64_t trace_id);

}  // namespace p4runpro::ctrl
