// Chain controller: the runtime-programming API for a dp::SwitchChain — the
// paper's multi-switch alternative to recirculation (§4.1.3/§5), driven as
// ONE logical control plane. A chain deploy mirrors the program on every
// hop under a single ProgramId (RPB entry keys embed the program id and the
// recirculation id doubles as the hop count, so ids MUST match chain-wide;
// that is why this controller owns its own id pool instead of composing
// per-hop ctrl::Controllers). Every mutation is a chain-wide two-phase
// transaction (ctrl::ChainTransaction): per-hop allocations solve in
// parallel on an internal pool, phase 1 reserves and stages on every hop,
// phase 2 commits hop by hop — and a control-channel fault at any (hop,
// write index) restores the whole chain byte-identically.
//
// Locking discipline mirrors ctrl::Controller: one session mutex guards
// every mutation of per-hop resource managers, engines, dataplanes, the
// virtual clock and the telemetry bundle. link_many sessions compile and
// solve off-lock against snapshots and re-enter the lock for
// reserve+commit. Because hop occupancies only ever change in lockstep
// (every deploy/relink/revoke is chain-wide), the per-hop snapshots stay
// identical and the per-hop solves of one program agree — a divergence is
// rejected as an internal error rather than silently deployed.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "compiler/compiler.h"
#include "compiler/solver.h"
#include "control/chain_txn.h"
#include "control/controller.h"
#include "control/resource_manager.h"
#include "control/update_engine.h"
#include "dataplane/switch_chain.h"

namespace p4runpro::obs {
struct Telemetry;
}

namespace p4runpro::ctrl {

class ChainController {
 public:
  /// The chain must have uniform specs (checked on every link; see
  /// dp::SwitchChain::uniform_specs). Unlike ctrl::Controller this does NOT
  /// attach per-hop pipeline observers or resource probes to `telemetry` —
  /// hop-level occupancy gauges would collide across hops in one registry;
  /// the chain-wide monitor events (chain_txn_commit / chain_txn_rollback)
  /// and chain_txn.* spans are the chain's observability surface.
  ChainController(dp::SwitchChain& chain, SimClock& clock,
                  rp::Objective objective = {}, BfrtCostModel cost = {},
                  obs::Telemetry* telemetry = nullptr);

  /// Link a single-program source unit on every hop, atomically chain-wide.
  Result<LinkResult> link(std::string_view source);

  /// Concurrent chain link sessions (compile/solve off-lock, per-session
  /// AllocFailed retry; see ctrl::Controller::link_many). Results are
  /// positional.
  std::vector<Result<LinkResult>> link_many(const std::vector<std::string>& sources,
                                            common::ThreadPool& pool,
                                            ParallelLinkOptions options = {});

  /// Atomically replace `old_id` with the program in `source` on every hop.
  /// The new version commits chain-wide first; only then is the old version
  /// retired. A fault while retiring the old version restores BOTH versions'
  /// pre-fault truth: the old program keeps running on every hop (fresh
  /// handles) and the new version is unwound chain-wide.
  Result<LinkResult> relink(ProgramId old_id, std::string_view source);

  /// Consistently remove a program from every hop. A channel fault at any
  /// hop restores the program chain-wide: the faulted hop via its engine
  /// journal, already-removed hops by re-installing their pre-removal
  /// image (the freed blocks are re-claimed at their exact old addresses).
  Status revoke(ProgramId id);
  Status revoke_by_name(const std::string& name);

  /// Toggle the asynchronous control channel on EVERY hop's update engine.
  /// With all hops async, phase 2 of every chain transaction pipelines: all
  /// hops' op-logs are submitted up front and drain their per-hop channels
  /// concurrently, so chain update latency is max(hop) instead of sum(hop).
  /// Off by default; call with no deployment in progress.
  void set_async_writes(bool enabled);
  [[nodiscard]] bool async_writes() const;

  // --- monitoring --------------------------------------------------------
  // Read-side queries take the session lock and quiesce every hop's channel
  // before reading (same discipline and pointer-lifetime caveat as
  // ctrl::Controller's monitoring block).

  [[nodiscard]] int length() const noexcept { return chain_.length(); }
  [[nodiscard]] const InstalledProgram* program_at(int hop, ProgramId id) const;
  [[nodiscard]] std::vector<ProgramId> running_programs() const;
  [[nodiscard]] std::size_t program_count() const;

  /// The hop whose switch physically holds `vmem` of program `id` — i.e.
  /// the chain hop of the (single, chain-compatibility-guaranteed) round
  /// that accesses it.
  [[nodiscard]] Result<int> owning_hop(ProgramId id, const std::string& vmem) const;

  /// Control-plane memory access, routed to the owning hop.
  [[nodiscard]] Result<Word> read_memory(ProgramId id, const std::string& vmem,
                                         MemAddr vaddr) const;
  Status write_memory(ProgramId id, const std::string& vmem, MemAddr vaddr,
                      Word value);
  [[nodiscard]] Result<std::vector<Word>> dump_memory(ProgramId id,
                                                      const std::string& vmem) const;

  /// Packets the program claimed at the chain entry (hop 0 sees every
  /// packet; later hops only the recirculated rounds).
  [[nodiscard]] std::uint64_t program_packets(ProgramId id) const;

  /// Per-hop internals (fault injection arms exactly one hop's engine).
  /// Unlocked test-harness access — do not call while sessions run on other
  /// threads.
  [[nodiscard]] ResourceManager& resources(int hop);
  [[nodiscard]] const ResourceManager& resources(int hop) const;
  [[nodiscard]] UpdateEngine& updates(int hop);

  /// Chain-wide lifecycle audit log (most recent last, bounded). Returned
  /// by value: a snapshot taken under the session lock.
  [[nodiscard]] std::deque<ControlEvent> events() const;

  [[nodiscard]] obs::Telemetry& telemetry() noexcept { return *telemetry_; }
  [[nodiscard]] rp::Objective objective() const noexcept { return objective_; }

  /// Deterministic virtual-time allocation charge (see
  /// Controller::set_fixed_alloc_charge_ms).
  void set_fixed_alloc_charge_ms(std::optional<double> ms) noexcept {
    fixed_alloc_charge_ms_ = ms;
  }

  /// Admission bounds for link_many sessions (same semantics as
  /// Controller::set_admission_config; chain sessions run as the default
  /// tenant at weight 1). Reconfigure only with no session in flight.
  void set_admission_config(AdmissionConfig config) {
    admission_.set_config(config);
  }
  [[nodiscard]] const AdmissionController& admission() const noexcept {
    return admission_;
  }

 private:
  /// One hop's control-plane state. ResourceManager is non-movable, hence
  /// the unique_ptr indirection.
  struct Hop {
    ResourceManager resources;
    UpdateEngine updates;
    std::map<ProgramId, InstalledProgram> programs;

    Hop(dp::RunproDataplane& dataplane, SimClock& clock, BfrtCostModel cost)
        : resources(dataplane.spec()), updates(dataplane, resources, clock, cost) {}
  };

  /// Pre-removal image of one hop's installed program (for re-install on a
  /// removal fault at a later hop).
  struct HopImage {
    InstalledProgram program;
    std::map<std::string, std::vector<Word>> words;  // vmem -> block contents
  };

  /// A committed chain deploy that is not yet adopted into the per-hop
  /// program maps — relink keeps the transaction alive so a fault while
  /// retiring the old version can still unwind_commit() the new one.
  struct DeployOutcome {
    LinkResult result;
    std::unique_ptr<ChainTransaction> txn;
  };

  [[nodiscard]] std::vector<ChainHop> hop_contexts();
  /// Solve + two-phase commit of one program chain-wide (audits failures;
  /// does NOT register the program — see adopt_locked).
  Result<DeployOutcome> deploy_locked(const rp::TranslatedProgram& ir,
                                      ProgramId replacing);
  /// Move a committed outcome's per-hop InstalledPrograms into the hop maps
  /// and the chain-wide running registry.
  void adopt_locked(DeployOutcome& outcome);
  Result<LinkResult> link_one_parallel(const std::string& source,
                                       ParallelLinkOptions options);
  /// Per-hop allocation solves (parallel on solve_pool_, each against its
  /// hop's snapshot); verifies the allocations agree on rounds and stage
  /// pinning and checks chain compatibility. Charges `alloc_ms` out-param
  /// worth of virtual time.
  Result<std::vector<rp::AllocationResult>> solve_all_locked(
      const rp::TranslatedProgram& ir, double* alloc_ms);
  [[nodiscard]] Status check_allocs_agree(
      const rp::TranslatedProgram& ir,
      const std::vector<rp::AllocationResult>& allocs) const;
  Status revoke_locked(ProgramId id);
  [[nodiscard]] const InstalledProgram* program_at_unlocked(int hop,
                                                           ProgramId id) const;
  [[nodiscard]] Result<int> owning_hop_unlocked(ProgramId id,
                                                const std::string& vmem) const;
  /// Drain every hop's async channel (no-op for serial hops). Caller holds
  /// mu_; deadlock-free because writers never take mu_.
  void quiesce_all() const;
  /// Remove `id` from every hop with chain-wide atomicity; on a fault at
  /// hop h (restored by its journal) re-installs every already-removed hop
  /// from its pre-removal image. `faulted_hop` (may be null) reports h.
  /// Pipelined (all hops submitted up front, settled in hop order) when
  /// every hop's engine is async.
  Status remove_chain_wide(ProgramId id, int* faulted_hop);
  /// Re-install a pre-removal image on one hop: re-claim the exact memory
  /// blocks, re-reserve entries, replay the install op-log (fresh handles).
  void reinstall_hop(int hop, HopImage image);
  [[nodiscard]] HopImage capture_image(int hop, const InstalledProgram& program) const;
  [[nodiscard]] const std::string* running_name(ProgramId id) const;
  [[nodiscard]] bool name_running(const std::string& name) const;
  [[nodiscard]] ProgramId next_program_id();
  void recycle_failed_id(ProgramId id);
  void record_event(ControlEvent::Kind kind, ProgramId id, const std::string& name,
                    const std::string& detail = "");

  dp::SwitchChain& chain_;
  SimClock& clock_;
  rp::Objective objective_;
  obs::Telemetry* telemetry_;
  std::optional<double> fixed_alloc_charge_ms_;
  std::vector<std::unique_ptr<Hop>> hops_;
  common::ThreadPool solve_pool_;  ///< per-hop allocation solves

  mutable std::mutex mu_;  ///< session lock (same discipline as Controller)
  std::deque<ControlEvent> events_;
  std::map<ProgramId, std::string> running_;  ///< chain-wide id -> name
  ProgramId next_id_ = 1;
  std::vector<ProgramId> free_ids_;  ///< fed only by successful revokes
  int filter_generation_ = 0;
  /// Blocking leaf lock — sessions acquire their grant before taking mu_.
  AdmissionController admission_;
};

}  // namespace p4runpro::ctrl
