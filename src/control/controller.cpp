#include "control/controller.h"

#include <cassert>

#include "obs/telemetry.h"

namespace p4runpro::ctrl {

Controller::Controller(dp::RunproDataplane& dataplane, SimClock& clock,
                       rp::Objective objective, BfrtCostModel cost,
                       obs::Telemetry* telemetry)
    : dataplane_(dataplane),
      clock_(clock),
      objective_(objective),
      telemetry_(&obs::telemetry_or_default(telemetry)),
      resources_(dataplane.spec()),
      updates_(dataplane, resources_, clock, cost) {
  // One bundle for the whole stack: phase spans are stamped with this
  // controller's virtual clock, and every layer reports into one registry.
  telemetry_->tracer.set_clock(&clock_);
  telemetry_->monitor.set_clock(&clock_);
  dataplane_.pipeline().attach_telemetry(telemetry_);
  dataplane_.pipeline().set_observer(&telemetry_->monitor);
  resources_.attach_telemetry(telemetry_);
  updates_.set_telemetry(telemetry_);
}

obs::ProgramHealthMonitor& Controller::monitor() noexcept {
  return telemetry_->monitor;
}

const obs::ProgramHealthMonitor& Controller::monitor() const noexcept {
  return telemetry_->monitor;
}

obs::FlightRecorder& Controller::flight_recorder() noexcept {
  return telemetry_->flight;
}

ProgramId Controller::next_program_id() {
  if (!free_ids_.empty()) {
    const ProgramId id = free_ids_.back();
    free_ids_.pop_back();
    return id;
  }
  return next_id_++;
}

void Controller::record_event(ControlEvent::Kind kind, ProgramId id,
                              const std::string& name, const std::string& detail) {
  events_.push_back(ControlEvent{kind, clock_.now_ms(), id, name, detail});
  if (events_.size() > 1024) events_.pop_front();
  const char* counter = nullptr;
  switch (kind) {
    case ControlEvent::Kind::Link: counter = "ctrl.events.link"; break;
    case ControlEvent::Kind::Relink: counter = "ctrl.events.relink"; break;
    case ControlEvent::Kind::Revoke: counter = "ctrl.events.revoke"; break;
    case ControlEvent::Kind::LinkFailed: counter = "ctrl.events.link_failed"; break;
  }
  if (counter != nullptr) telemetry_->metrics.counter(counter).inc();
}

Result<std::vector<LinkResult>> Controller::link(std::string_view source) {
  auto link_span = telemetry_->tracer.span("link", "ctrl");
  // Parse + check + translate. The paper measures ~2 ms average parse time
  // on the switch CPU; charge it to the simulated clock. compile_source
  // emits the "parse" and "translate" child spans.
  const double parse_start_ms = clock_.now_ms();
  auto compiled = rp::compile_source(source, telemetry_);
  clock_.advance_ms(2.0);
  if (!compiled.ok()) {
    record_event(ControlEvent::Kind::LinkFailed, 0, "<compile>",
                 compiled.error().str());
    return compiled.error();
  }
  const double parse_ms = clock_.now_ms() - parse_start_ms;

  std::vector<LinkResult> results;
  for (const auto& ir : compiled.value()) {
    auto linked = link_one(ir);
    if (!linked.ok()) {
      record_event(ControlEvent::Kind::LinkFailed, 0, ir.name,
                   linked.error().str());
      // All-or-nothing: revoke programs linked earlier in this unit.
      for (const auto& r : results) {
        const Status s = revoke(r.id);
        assert(s.ok());
        (void)s;
      }
      return linked.error();
    }
    record_event(ControlEvent::Kind::Link, linked.value().id, ir.name);
    results.push_back(std::move(linked).take());
    results.back().stats.parse_ms = parse_ms / static_cast<double>(compiled.value().size());
  }

  // Route the deployment-delay breakdown (LinkStats) through the registry:
  // the §6.2.1 quantities become queryable histograms.
  auto& m = telemetry_->metrics;
  for (const auto& r : results) {
    m.histogram("ctrl.link.parse_ms").observe(r.stats.parse_ms);
    m.histogram("ctrl.link.alloc_ms").observe(r.stats.alloc_ms);
    m.histogram("ctrl.link.update_ms").observe(r.stats.update_ms);
    m.histogram("ctrl.link.deploy_ms").observe(r.stats.deploy_ms());
  }
  link_span.arg("programs", static_cast<std::uint64_t>(results.size()));
  return results;
}

Result<LinkResult> Controller::link_single(std::string_view source) {
  auto results = link(source);
  if (!results.ok()) return results.error();
  if (results.value().size() != 1) {
    return Error{"expected exactly one program in source unit", "Controller"};
  }
  return std::move(results.value().front());
}

Result<LinkResult> Controller::link_one(const rp::TranslatedProgram& ir,
                                        ProgramId replacing) {
  if (const InstalledProgram* existing = program_by_name(ir.name);
      existing != nullptr && existing->id != replacing) {
    return Error{"a program named '" + ir.name + "' is already running", "Controller"};
  }

  // Allocation (real measured solver time, §6.2.1 "allocation delay").
  auto solve_span = telemetry_->tracer.span("solve", "ctrl");
  WallTimer timer;
  const auto snapshot = resources_.snapshot();
  auto alloc = rp::solve_allocation(ir, dataplane_.spec(), snapshot, objective_,
                                    telemetry_);
  const double alloc_ms =
      fixed_alloc_charge_ms_ ? *fixed_alloc_charge_ms_ : timer.elapsed_ms();
  clock_.advance_ms(alloc_ms);
  if (alloc.ok()) {
    solve_span.arg("nodes_explored", alloc.value().nodes_explored);
    solve_span.arg("rounds", static_cast<std::uint64_t>(alloc.value().rounds));
  }
  solve_span.end();
  if (!alloc.ok()) return alloc.error();

  // Commit resources: memory blocks at the pinned stages, then table
  // entries per physical RPB.
  const ProgramId id = next_program_id();
  std::map<std::string, VmemPlacement> placements;
  auto release_all = [&] {
    for (const auto& [vmem, placement] : placements) {
      resources_.free_memory(placement.rpb, placement.block);
    }
    free_ids_.push_back(id);
  };

  for (const auto& [vmem, rpb] : alloc.value().vmem_rpb) {
    auto block = resources_.allocate_memory(rpb, ir.vmem_sizes.at(vmem));
    if (!block.ok()) {
      release_all();
      return block.error();
    }
    placements[vmem] = VmemPlacement{rpb, block.value()};
  }

  auto entrygen_span = telemetry_->tracer.span("entrygen", "ctrl");
  auto plan = rp::generate_entries(ir, alloc.value(), id, placements, dataplane_.spec());
  plan.filter_priority = ++filter_generation_;
  entrygen_span.arg("rpb_entries", static_cast<std::uint64_t>(plan.rpb_entries.size()));
  entrygen_span.end();

  // Incremental update: carry over the contents of virtual memories that
  // survive the version change, before the new version becomes visible.
  if (replacing != 0) {
    if (const auto* old_placements = resources_.program_placements(replacing)) {
      for (const auto& [vmem, placement] : placements) {
        const auto old_it = old_placements->find(vmem);
        if (old_it == old_placements->end()) continue;
        const std::uint32_t count =
            std::min(placement.block.size, old_it->second.block.size);
        const auto& old_mem = dataplane_.rpb(old_it->second.rpb).memory();
        auto& new_mem = dataplane_.rpb(placement.rpb).memory();
        for (std::uint32_t a = 0; a < count; ++a) {
          new_mem.write(placement.block.base + a,
                        old_mem.read(old_it->second.block.base + a));
        }
      }
    }
  }

  std::map<int, std::uint32_t> entries_per_rpb;
  for (const auto& e : plan.rpb_entries) ++entries_per_rpb[e.rpb];
  std::vector<int> reserved;
  for (const auto& [rpb, count] : entries_per_rpb) {
    if (auto s = resources_.reserve_entries(rpb, count); !s.ok()) {
      for (int r : reserved) {
        resources_.release_entries(r, entries_per_rpb.at(r));
      }
      release_all();
      return s.error();
    }
    reserved.push_back(rpb);
  }

  // Consistent update (simulated bfrt writes; §6.2.1 "update delay").
  auto install_span = telemetry_->tracer.span("install", "ctrl");
  const double update_start_ms = clock_.now_ms();
  auto installed = updates_.install(ir, alloc.value(), std::move(plan),
                                    placements, ir.name);
  const double update_ms = clock_.now_ms() - update_start_ms;
  install_span.end();
  if (!installed.ok()) {
    for (int r : reserved) resources_.release_entries(r, entries_per_rpb.at(r));
    release_all();
    return installed.error();
  }

  resources_.record_program(id, placements);
  programs_.emplace(id, std::move(installed).take());

  LinkResult result;
  result.id = id;
  result.name = ir.name;
  result.stats.alloc_ms = alloc_ms;
  result.stats.update_ms = update_ms;
  return result;
}

Result<LinkResult> Controller::relink(ProgramId old_id, std::string_view source) {
  if (program(old_id) == nullptr) {
    return Error{"no running program with id " + std::to_string(old_id), "Controller"};
  }
  auto relink_span = telemetry_->tracer.span("relink", "ctrl");
  auto compiled = rp::compile_source(source, telemetry_);
  clock_.advance_ms(2.0);
  if (!compiled.ok()) return compiled.error();
  if (compiled.value().size() != 1) {
    return Error{"relink expects exactly one program", "Controller"};
  }

  // Install the new version first (it stays invisible until its filter
  // lands, which outranks the old one), then retire the old version.
  auto linked = link_one(compiled.value().front(), old_id);
  if (!linked.ok()) {
    record_event(ControlEvent::Kind::LinkFailed, old_id,
                 compiled.value().front().name, linked.error().str());
    return linked.error();
  }
  record_event(ControlEvent::Kind::Relink, linked.value().id,
               compiled.value().front().name);
  if (auto s = revoke(old_id); !s.ok()) {
    const Status undo = revoke(linked.value().id);
    assert(undo.ok());
    (void)undo;
    return s.error();
  }
  return linked;
}

Status Controller::revoke(ProgramId id) {
  const auto it = programs_.find(id);
  if (it == programs_.end()) {
    return Error{"no running program with id " + std::to_string(id), "Controller"};
  }
  auto revoke_span = telemetry_->tracer.span("revoke", "ctrl");
  InstalledProgram& program = it->second;

  std::map<int, std::uint32_t> entries_per_rpb;
  for (const auto& [rpb, handle] : program.rpb_handles) {
    (void)handle;
    ++entries_per_rpb[rpb];
  }

  updates_.remove(program);

  for (const auto& [rpb, count] : entries_per_rpb) {
    resources_.release_entries(rpb, count);
  }
  resources_.erase_program(id);
  dataplane_.init_block().clear_counter(id);
  record_event(ControlEvent::Kind::Revoke, id, program.name);
  free_ids_.push_back(id);
  programs_.erase(it);
  return {};
}

Status Controller::revoke_by_name(const std::string& name) {
  for (const auto& [id, program] : programs_) {
    if (program.name == name) return revoke(id);
  }
  return Error{"no running program named '" + name + "'", "Controller"};
}

const InstalledProgram* Controller::program(ProgramId id) const {
  const auto it = programs_.find(id);
  return it == programs_.end() ? nullptr : &it->second;
}

const InstalledProgram* Controller::program_by_name(const std::string& name) const {
  for (const auto& [id, program] : programs_) {
    if (program.name == name) return &program;
  }
  return nullptr;
}

std::vector<ProgramId> Controller::running_programs() const {
  std::vector<ProgramId> ids;
  ids.reserve(programs_.size());
  for (const auto& [id, program] : programs_) ids.push_back(id);
  return ids;
}

Result<Word> Controller::read_memory(ProgramId id, const std::string& vmem,
                                     MemAddr vaddr) const {
  return resources_.read_virtual(dataplane_, id, vmem, vaddr);
}

std::vector<rmt::Packet> Controller::drain_reports() {
  return dataplane_.pipeline().drain_cpu_queue();
}

std::uint64_t Controller::program_packets(ProgramId id) const {
  return dataplane_.init_block().claimed_packets(id);
}

Result<std::vector<Word>> Controller::dump_memory(ProgramId id,
                                                  const std::string& vmem) const {
  const auto* placements = resources_.program_placements(id);
  if (placements == nullptr) return Error{"unknown program", "Controller"};
  const auto it = placements->find(vmem);
  if (it == placements->end()) return Error{"unknown memory '" + vmem + "'", "Controller"};
  std::vector<Word> out;
  out.reserve(it->second.block.size);
  const auto& memory = dataplane_.rpb(it->second.rpb).memory();
  for (std::uint32_t a = 0; a < it->second.block.size; ++a) {
    out.push_back(memory.read(it->second.block.base + a));
  }
  return out;
}

Result<rmt::HashAlgo> Controller::hash_algo_for(ProgramId id,
                                                const std::string& vmem) const {
  const InstalledProgram* prog = program(id);
  if (prog == nullptr) return Error{"unknown program", "Controller"};
  for (const auto& node : prog->ir.nodes) {
    const bool hashes_mem = node.op.kind == dp::OpKind::Hash5TupleMem ||
                            node.op.kind == dp::OpKind::HashHarMem;
    if (!hashes_mem || node.op.vmem != vmem) continue;
    const int logical = prog->alloc.x[static_cast<std::size_t>(node.depth - 1)];
    const int phys = dp::physical_rpb(logical, dataplane_.spec().total_rpbs());
    return dataplane_.rpb(phys).hash16_algo();
  }
  return Error{"program has no hash-addressed access to '" + vmem + "'", "Controller"};
}

Status Controller::write_memory(ProgramId id, const std::string& vmem, MemAddr vaddr,
                                Word value) {
  return resources_.write_virtual(dataplane_, id, vmem, vaddr, value);
}

}  // namespace p4runpro::ctrl
