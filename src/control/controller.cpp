#include "control/controller.h"

#include <cassert>
#include <future>

#include "control/deploy_txn.h"
#include "control/lock_hold.h"
#include "obs/telemetry.h"

namespace p4runpro::ctrl {

namespace {

// A session's resource demand is computable straight from the IR — before
// solving — and equals the committed footprint exactly (reserve takes
// ir.vmem_sizes words per vmem and one entry per node / per branch case).
// That exactness is what makes charge-at-admission quota accounting sound.
[[nodiscard]] std::uint64_t memory_demand(const rp::TranslatedProgram& ir) {
  std::uint64_t words = 0;
  for (const auto& [vmem, size] : ir.vmem_sizes) {
    (void)vmem;
    words += size;
  }
  return words;
}

[[nodiscard]] std::uint64_t entry_demand(const rp::TranslatedProgram& ir) {
  return static_cast<std::uint64_t>(ir.total_entries());
}

/// Stage-memory words an installed program holds (== memory_demand of its
/// IR; read from the placements so revoke can release without the IR).
[[nodiscard]] std::uint64_t footprint_words(const InstalledProgram& program) {
  std::uint64_t words = 0;
  for (const auto& [vmem, placement] : program.placements) {
    (void)vmem;
    words += placement.block.size;
  }
  return words;
}

}  // namespace

Controller::Controller(dp::RunproDataplane& dataplane, SimClock& clock,
                       rp::Objective objective, BfrtCostModel cost,
                       obs::Telemetry* telemetry)
    : dataplane_(dataplane),
      clock_(clock),
      objective_(objective),
      telemetry_(&obs::telemetry_or_default(telemetry)),
      resources_(dataplane.spec()),
      updates_(dataplane, resources_, clock, cost) {
  // One bundle for the whole stack: phase spans are stamped with this
  // controller's virtual clock, and every layer reports into one registry.
  telemetry_->tracer.set_clock(&clock_);
  telemetry_->monitor.set_clock(&clock_);
  dataplane_.attach_telemetry(telemetry_);
  dataplane_.pipeline().set_observer(&telemetry_->monitor);
  resources_.attach_telemetry(telemetry_);
  updates_.set_telemetry(telemetry_);
  // Admission gauges as probes: the admission controller is internally
  // synchronized, so sampling at export time is safe from any thread.
  telemetry_->metrics.register_probe("ctrl.tenant.queue_depth", this, [this] {
    return static_cast<double>(admission_.queue_depth());
  });
  telemetry_->metrics.register_probe("ctrl.tenant.inflight", this, [this] {
    return static_cast<double>(admission_.inflight());
  });
}

Controller::~Controller() { telemetry_->metrics.unregister_probes(this); }

obs::ProgramHealthMonitor& Controller::monitor() noexcept {
  return telemetry_->monitor;
}

const obs::ProgramHealthMonitor& Controller::monitor() const noexcept {
  return telemetry_->monitor;
}

obs::FlightRecorder& Controller::flight_recorder() noexcept {
  return telemetry_->flight;
}

ProgramId Controller::next_program_id() {
  if (!free_ids_.empty()) {
    const ProgramId id = free_ids_.back();
    free_ids_.pop_back();
    return id;
  }
  return next_id_++;
}

void Controller::recycle_failed_id(ProgramId id) {
  if (id == next_id_ - 1) {
    --next_id_;
    return;
  }
  // The id was drawn from the recycle pool (its previous occupant was
  // cleanly revoked); put it back.
  free_ids_.push_back(id);
}

void Controller::record_event(ControlEvent::Kind kind, ProgramId id,
                              const std::string& name, const std::string& detail) {
  events_.push_back(ControlEvent{kind, clock_.now_ms(), id, name, detail});
  if (events_.size() > 1024) events_.pop_front();
  const char* counter = nullptr;
  switch (kind) {
    case ControlEvent::Kind::Link: counter = "ctrl.events.link"; break;
    case ControlEvent::Kind::Relink: counter = "ctrl.events.relink"; break;
    case ControlEvent::Kind::Revoke: counter = "ctrl.events.revoke"; break;
    case ControlEvent::Kind::LinkFailed: counter = "ctrl.events.link_failed"; break;
    case ControlEvent::Kind::RevokeFailed:
      counter = "ctrl.events.revoke_failed";
      break;
  }
  if (counter != nullptr) telemetry_->metrics.counter(counter).inc();
}

void Controller::record_link_histograms(const LinkResult& result) {
  // Route the deployment-delay breakdown (LinkStats) through the registry:
  // the §6.2.1 quantities become queryable histograms.
  auto& m = telemetry_->metrics;
  m.histogram("ctrl.link.parse_ms").observe(result.stats.parse_ms);
  m.histogram("ctrl.link.alloc_ms").observe(result.stats.alloc_ms);
  m.histogram("ctrl.link.update_ms").observe(result.stats.update_ms);
  m.histogram("ctrl.link.deploy_ms").observe(result.stats.deploy_ms());
}

Result<std::vector<LinkResult>> Controller::link(std::string_view source) {
  std::lock_guard<std::mutex> lock(mu_);
  // Causal trace for the whole operation (adopted when a ChainController
  // entry point is already active). Constructed inside the lock: the
  // context is bundle-shared state, like the tracer.
  obs::TraceScope trace(telemetry_);
  LockHoldTimer hold(clock_, telemetry_);
  auto results = link_locked(source);
  if (results.ok()) {
    for (auto& r : results.value()) r.trace = trace.trace_id();
  }
  return results;
}

Result<std::vector<LinkResult>> Controller::link_locked(std::string_view source) {
  auto link_span = telemetry_->tracer.span("link", "ctrl");
  // Parse + check + translate. The paper measures ~2 ms average parse time
  // on the switch CPU; charge it to the simulated clock. compile_source
  // emits the "parse" and "translate" child spans.
  const double parse_start_ms = clock_.now_ms();
  auto compiled = rp::compile_source(source, telemetry_);
  clock_.advance_ms(2.0);
  if (!compiled.ok()) {
    record_event(ControlEvent::Kind::LinkFailed, 0, "<compile>",
                 compiled.error().str());
    return compiled.error();
  }
  const double parse_ms = clock_.now_ms() - parse_start_ms;

  std::vector<LinkResult> results;
  for (const auto& ir : compiled.value()) {
    auto linked = link_one_locked(ir);
    if (!linked.ok()) {
      // All-or-nothing: revoke programs linked earlier in this unit.
      // (link_one_locked already audited the failure.)
      for (const auto& r : results) {
        const Status s = revoke_locked(r.id);
        assert(s.ok());
        (void)s;
      }
      return linked.error();
    }
    record_event(ControlEvent::Kind::Link, linked.value().id, ir.name);
    results.push_back(std::move(linked).take());
    results.back().stats.parse_ms = parse_ms / static_cast<double>(compiled.value().size());
  }

  for (const auto& r : results) record_link_histograms(r);
  link_span.arg("programs", static_cast<std::uint64_t>(results.size()));
  return results;
}

Result<LinkResult> Controller::link_single(std::string_view source) {
  auto results = link(source);
  if (!results.ok()) return results.error();
  if (results.value().size() != 1) {
    return Error{"expected exactly one program in source unit", "Controller",
                 ErrorCode::InvalidArgument};
  }
  return std::move(results.value().front());
}

Result<LinkResult> Controller::link_one_locked(const rp::TranslatedProgram& ir,
                                               ProgramId replacing,
                                               TenantId tenant) {
  // Every rollback leaves an audit trail: a LinkFailed event carrying the
  // coded error, plus a TxnRollback entry in the monitor stream when a
  // transaction (id assigned) was actually begun.
  auto fail = [&](ProgramId id, const Error& err) -> Error {
    if (id != 0) telemetry_->monitor.txn_rolled_back(id, ir.name, err.str());
    record_event(ControlEvent::Kind::LinkFailed, id, ir.name, err.str());
    return err;
  };

  if (const InstalledProgram* existing = program_by_name_unlocked(ir.name);
      (existing != nullptr && existing->id != replacing) ||
      pending_names_.count(ir.name) != 0) {
    return fail(0, Error{"a program named '" + ir.name + "' is already running",
                         "Controller", ErrorCode::Conflict});
  }

  // Allocation (real measured solver time, §6.2.1 "allocation delay").
  auto solve_span = telemetry_->tracer.span("solve", "ctrl");
  WallTimer timer;
  const auto snapshot = resources_.snapshot();
  auto alloc = rp::solve_allocation(ir, dataplane_.spec(), snapshot, objective_,
                                    telemetry_);
  const double alloc_ms =
      fixed_alloc_charge_ms_ ? *fixed_alloc_charge_ms_ : timer.elapsed_ms();
  clock_.advance_ms(alloc_ms);
  if (alloc.ok()) {
    solve_span.arg("nodes_explored", alloc.value().nodes_explored);
    solve_span.arg("rounds", static_cast<std::uint64_t>(alloc.value().rounds));
  }
  solve_span.end();
  if (!alloc.ok()) return fail(0, alloc.error());

  // Transaction: reserve -> plan -> stage -> commit, rollback on any fault.
  const ProgramId id = next_program_id();
  DeployTransaction txn(
      DeployContext{dataplane_, resources_, updates_, telemetry_}, ir,
      std::move(alloc).take(), id, ++filter_generation_, replacing);
  if (auto s = txn.reserve(); !s.ok()) {
    recycle_failed_id(id);
    return fail(id, s.error());
  }
  txn.plan_entries();
  txn.stage();

  // Consistent update (simulated bfrt writes; §6.2.1 "update delay").
  auto install_span = telemetry_->tracer.span("install", "ctrl");
  const double update_start_ms = clock_.now_ms();
  auto installed = txn.commit();
  const double update_ms = clock_.now_ms() - update_start_ms;
  install_span.end();
  if (!installed.ok()) {
    recycle_failed_id(id);
    return fail(id, installed.error());
  }
  telemetry_->monitor.txn_committed(id, ir.name);
  InstalledProgram program = std::move(installed).take();
  program.tenant = tenant;
  // Unchecked charge: serial/relink/defrag callers bypass the quota gate
  // (the concurrent session path charges at admission instead and never
  // reaches this function).
  tenants_.charge(tenant, memory_demand(ir), entry_demand(ir));
  programs_.emplace(id, std::move(program));

  LinkResult result;
  result.id = id;
  result.name = ir.name;
  result.stats.alloc_ms = alloc_ms;
  result.stats.update_ms = update_ms;
  return result;
}

std::vector<Result<LinkResult>> Controller::link_many(
    const std::vector<std::string>& sources, common::ThreadPool& pool,
    ParallelLinkOptions options) {
  std::vector<SessionSpec> sessions;
  sessions.reserve(sources.size());
  for (const auto& source : sources) sessions.push_back(SessionSpec{source, 0});
  return link_many(sessions, pool, options);
}

std::vector<Result<LinkResult>> Controller::link_many(
    const std::vector<SessionSpec>& sessions, common::ThreadPool& pool,
    ParallelLinkOptions options) {
  std::vector<std::future<Result<LinkResult>>> futures;
  futures.reserve(sessions.size());
  for (const auto& session : sessions) {
    futures.push_back(pool.submit(
        [this, &session, options] { return link_session(session, options); }));
  }
  std::vector<Result<LinkResult>> results;
  results.reserve(futures.size());
  for (auto& future : futures) results.push_back(future.get());
  return results;
}

Result<LinkResult> Controller::link_session(const SessionSpec& session,
                                            ParallelLinkOptions options) {
  // Compile + translate off-lock: pure compute over the source text. No
  // telemetry — the tracer and clock are shared state behind mu_.
  auto compiled = rp::compile_source(session.source, nullptr);
  if (!compiled.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    clock_.advance_ms(2.0);
    record_event(ControlEvent::Kind::LinkFailed, 0, "<compile>",
                 compiled.error().str());
    return compiled.error();
  }
  if (compiled.value().size() != 1) {
    return Error{"link_many expects single-program source units", "Controller",
                 ErrorCode::InvalidArgument};
  }
  const rp::TranslatedProgram& ir = compiled.value().front();
  const TenantId tenant = session.tenant;

  // Admission gate. The controller BLOCKS queued sessions (weighted fair
  // order), so it runs strictly before mu_ is taken; a shed returns
  // immediately with AdmissionShed instead of spinning retries against a
  // saturated switch.
  WallTimer wait_timer;
  auto grant = admission_.acquire(tenant, tenants_.weight(tenant));
  if (!grant.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    telemetry_->metrics.counter("ctrl.tenant.shed").inc();
    telemetry_->monitor.admission_shed(tenant, ir.name, grant.error().str());
    record_event(ControlEvent::Kind::LinkFailed, 0, ir.name, grant.error().str());
    return grant.error();
  }
  const double queue_wait_ms = wait_timer.elapsed_ms();

  auto result = link_session_admitted(ir, tenant, options);
  admission_.release();

  std::lock_guard<std::mutex> lock(mu_);
  auto& m = telemetry_->metrics;
  m.counter("ctrl.tenant.admitted").inc();
  m.histogram("ctrl.tenant.queue_wait_ms").observe(queue_wait_ms);
  return result;
}

Result<LinkResult> Controller::link_session_admitted(
    const rp::TranslatedProgram& ir, TenantId tenant,
    ParallelLinkOptions options) {
  // Quota gate: charge the session's full demand up front (demand equals
  // the committed footprint exactly, see memory_demand) and refund on every
  // failure path. Charging before reserving keeps the invariant one-sided:
  // registry usage >= sum of installed footprints, so concurrent sessions
  // can never oversubscribe a quota between check and commit.
  const std::uint64_t mem_words = memory_demand(ir);
  const std::uint64_t entry_count = entry_demand(ir);
  if (auto s = tenants_.admit(tenant, mem_words, entry_count); !s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    telemetry_->metrics.counter("ctrl.tenant.quota_rejected").inc();
    record_event(ControlEvent::Kind::LinkFailed, 0, ir.name, s.error().str());
    return s.error();
  }
  struct ChargeGuard {
    TenantRegistry& tenants;
    TenantId tenant;
    std::uint64_t mem, entries;
    bool armed = true;
    ~ChargeGuard() {
      if (armed) tenants.refund(tenant, mem, entries);
    }
  } charge_guard{tenants_, tenant, mem_words, entry_count};

  Error conflict{"parallel link: retries exhausted", "Controller",
                 ErrorCode::AllocFailed};
  for (int attempt = 0; attempt <= options.max_solve_retries; ++attempt) {
    // Solve against a snapshot off-lock (the expensive phase runs in
    // parallel across sessions).
    ResourceManager::Snapshot snapshot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      snapshot = resources_.snapshot();
    }
    WallTimer timer;
    auto alloc =
        rp::solve_allocation(ir, dataplane_.spec(), snapshot, objective_, nullptr);
    const double solve_ms = timer.elapsed_ms();

    // Reservation + staged commit serialize under the session lock; the
    // clock, telemetry and audit log are only touched here. (A unique_lock:
    // the async channel path parks off-lock while its write is in flight.)
    std::unique_lock<std::mutex> lock(mu_);
    // Per-attempt trace scope (the context is lock-protected shared state);
    // the successful attempt's id is the one the LinkResult reports. Held in
    // an optional so the async path can drop it across the unlocked wait and
    // re-adopt the captured context afterwards.
    std::optional<obs::TraceScope> trace(std::in_place, telemetry_);
    LockHoldTimer hold(clock_, telemetry_);
    if (attempt == 0) clock_.advance_ms(2.0);  // parse charge, once
    const double alloc_ms =
        fixed_alloc_charge_ms_ ? *fixed_alloc_charge_ms_ : solve_ms;
    clock_.advance_ms(alloc_ms);
    if (!alloc.ok()) {
      if (alloc.error().code == ErrorCode::AllocFailed && auto_defrag_ &&
          attempt < options.max_solve_retries) {
        // The snapshot had the words but not the contiguity: compact, then
        // burn a retry on the improved memory map instead of an unchanged
        // one. Bounded like every retry — a genuinely full switch still
        // exhausts the cap and reports AllocFailed.
        conflict = alloc.error();
        telemetry_->metrics.counter("ctrl.link.retries").inc();
        defragment_locked(DefragOptions{});
        continue;
      }
      record_event(ControlEvent::Kind::LinkFailed, 0, ir.name,
                   alloc.error().str());
      return alloc.error();
    }
    if (program_by_name_unlocked(ir.name) != nullptr ||
        pending_names_.count(ir.name) != 0) {
      const Error err{"a program named '" + ir.name + "' is already running",
                      "Controller", ErrorCode::Conflict};
      record_event(ControlEvent::Kind::LinkFailed, 0, ir.name, err.str());
      return err;
    }

    const ProgramId id = next_program_id();
    DeployTransaction txn(
        DeployContext{dataplane_, resources_, updates_, telemetry_}, ir,
        std::move(alloc).take(), id, ++filter_generation_, 0);
    if (auto s = txn.reserve(); !s.ok()) {
      recycle_failed_id(id);
      if (s.error().code == ErrorCode::AllocFailed &&
          attempt < options.max_solve_retries) {
        // Another session took the resources between snapshot and lock:
        // re-snapshot and re-solve.
        conflict = s.error();
        telemetry_->metrics.counter("ctrl.link.retries").inc();
        if (auto_defrag_) defragment_locked(DefragOptions{});
        continue;
      }
      telemetry_->monitor.txn_rolled_back(id, ir.name, s.error().str());
      record_event(ControlEvent::Kind::LinkFailed, id, ir.name, s.error().str());
      return s.error();
    }
    txn.plan_entries();
    txn.stage();

    const double update_start_ms = clock_.now_ms();
    Result<InstalledProgram> installed = [&]() -> Result<InstalledProgram> {
      if (!updates_.async()) return txn.commit();
      // Pipelined commit: submit under the lock, park OFF-lock while the
      // writer drains the channel, settle under the lock again. The name
      // guard keeps concurrent sessions from double-booking the name while
      // we are away; reservations and the staged batch are already ours.
      pending_names_.insert(ir.name);
      txn.commit_submit();
      const obs::TraceContext ctx = telemetry_->active_trace;
      trace.reset();  // shared state: never leave a context installed off-lock
      hold.pause();
      lock.unlock();
      txn.commit_wait();
      lock.lock();
      hold.resume();
      trace.emplace(telemetry_, ctx);  // finish-side spans carry our trace id
      auto result = txn.commit_finish();
      pending_names_.erase(ir.name);
      return result;
    }();
    const double update_ms =
        updates_.async() ? txn.channel_ms() : clock_.now_ms() - update_start_ms;
    if (!installed.ok()) {
      recycle_failed_id(id);
      telemetry_->monitor.txn_rolled_back(id, ir.name, installed.error().str());
      record_event(ControlEvent::Kind::LinkFailed, id, ir.name,
                   installed.error().str());
      return installed.error();
    }
    telemetry_->monitor.txn_committed(id, ir.name);
    InstalledProgram program = std::move(installed).take();
    program.tenant = tenant;
    charge_guard.armed = false;  // install owns the admission charge now
    programs_.emplace(id, std::move(program));
    record_event(ControlEvent::Kind::Link, id, ir.name);

    LinkResult result;
    result.id = id;
    result.name = ir.name;
    result.stats.parse_ms = 2.0;
    result.stats.alloc_ms = alloc_ms;
    result.stats.update_ms = update_ms;
    result.trace = trace->trace_id();
    record_link_histograms(result);
    return result;
  }
  return conflict;
}

Result<LinkResult> Controller::relink(ProgramId old_id, std::string_view source) {
  std::lock_guard<std::mutex> lock(mu_);
  if (program_unlocked(old_id) == nullptr) {
    return Error{"no running program with id " + std::to_string(old_id),
                 "Controller", ErrorCode::NotFound};
  }
  if (busy_ids_.count(old_id) != 0) {
    return Error{"program " + std::to_string(old_id) +
                     " has a revoke in flight on the async channel",
                 "Controller", ErrorCode::Conflict};
  }
  obs::TraceScope trace(telemetry_);
  LockHoldTimer hold(clock_, telemetry_);
  auto relink_span = telemetry_->tracer.span("relink", "ctrl");
  auto compiled = rp::compile_source(source, telemetry_);
  clock_.advance_ms(2.0);
  if (!compiled.ok()) return compiled.error();
  if (compiled.value().size() != 1) {
    return Error{"relink expects exactly one program", "Controller",
                 ErrorCode::InvalidArgument};
  }

  // Install the new version first (it stays invisible until its filter
  // lands, which outranks the old one), then retire the old version. The
  // new version stays attributed to the old version's tenant.
  const TenantId tenant = program_unlocked(old_id)->tenant;
  auto linked = link_one_locked(compiled.value().front(), old_id, tenant);
  if (!linked.ok()) return linked.error();
  record_event(ControlEvent::Kind::Relink, linked.value().id,
               compiled.value().front().name);
  if (auto s = revoke_locked(old_id); !s.ok()) {
    const Status undo = revoke_locked(linked.value().id);
    assert(undo.ok());
    (void)undo;
    return s.error();
  }
  linked.value().trace = trace.trace_id();
  return linked;
}

Status Controller::revoke(ProgramId id) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!updates_.async()) {
    obs::TraceScope trace(telemetry_);
    LockHoldTimer hold(clock_, telemetry_);
    return revoke_locked(id);
  }

  // Async revoke dance: submit the consistent remove under the lock, park
  // off-lock while the writer drains it, settle under the lock again. The
  // busy guard keeps relink/revoke sessions off this program while the
  // writer owns its handle vectors.
  const auto it = programs_.find(id);
  if (it == programs_.end()) {
    return Error{"no running program with id " + std::to_string(id), "Controller",
                 ErrorCode::NotFound};
  }
  if (busy_ids_.count(id) != 0) {
    return Error{"program " + std::to_string(id) +
                     " already has a revoke in flight on the async channel",
                 "Controller", ErrorCode::Conflict};
  }
  std::optional<obs::TraceScope> trace(std::in_place, telemetry_);
  LockHoldTimer hold(clock_, telemetry_);

  std::map<int, std::uint32_t> entries_per_rpb;
  for (const auto& [rpb, handle] : it->second.rpb_handles) {
    (void)handle;
    ++entries_per_rpb[rpb];
  }
  // Tenant footprint, captured now: a successful remove clears the
  // program's placement and handle vectors.
  const TenantId tenant = it->second.tenant;
  const std::uint64_t tenant_words = footprint_words(it->second);
  const auto tenant_entries =
      static_cast<std::uint64_t>(it->second.rpb_handles.size());

  busy_ids_.insert(id);
  auto revoke_span = telemetry_->tracer.span("revoke", "ctrl");
  auto pending = updates_.submit_remove(it->second);
  const obs::TraceContext ctx = telemetry_->active_trace;
  revoke_span.end();  // shared state: close before the unlocked wait
  trace.reset();
  hold.pause();
  lock.unlock();
  pending.done.wait();
  lock.lock();
  hold.resume();
  trace.emplace(telemetry_, ctx);

  // The busy guard kept the program in the map while we were away.
  InstalledProgram& program = programs_.find(id)->second;
  const Status removed = updates_.finish_remove(pending, program);
  busy_ids_.erase(id);
  if (!removed.ok()) {
    // The removal journal restored the program (fresh handles); it keeps
    // running and keeps all its resources.
    telemetry_->monitor.txn_rolled_back(id, program.name, removed.error().str());
    record_event(ControlEvent::Kind::RevokeFailed, id, program.name,
                 removed.error().str());
    return removed.error();
  }
  for (const auto& [rpb, count] : entries_per_rpb) {
    resources_.release_entries(rpb, count);
  }
  resources_.erase_program(id);
  dataplane_.clear_claim_counter(id);
  tenants_.release(tenant, tenant_words, tenant_entries);
  record_event(ControlEvent::Kind::Revoke, id, program.name);
  free_ids_.push_back(id);
  programs_.erase(id);
  return {};
}

Status Controller::revoke_locked(ProgramId id) {
  const auto it = programs_.find(id);
  if (it == programs_.end()) {
    return Error{"no running program with id " + std::to_string(id), "Controller",
                 ErrorCode::NotFound};
  }
  if (busy_ids_.count(id) != 0) {
    return Error{"program " + std::to_string(id) +
                     " has a revoke in flight on the async channel",
                 "Controller", ErrorCode::Conflict};
  }
  auto revoke_span = telemetry_->tracer.span("revoke", "ctrl");
  InstalledProgram& program = it->second;

  std::map<int, std::uint32_t> entries_per_rpb;
  for (const auto& [rpb, handle] : program.rpb_handles) {
    (void)handle;
    ++entries_per_rpb[rpb];
  }
  // Tenant footprint, captured now: a successful remove clears the
  // program's placement and handle vectors.
  const TenantId tenant = program.tenant;
  const std::uint64_t tenant_words = footprint_words(program);
  const auto tenant_entries =
      static_cast<std::uint64_t>(program.rpb_handles.size());

  if (auto s = updates_.remove(program); !s.ok()) {
    // The removal journal restored the program (fresh handles); it keeps
    // running and keeps all its resources.
    telemetry_->monitor.txn_rolled_back(id, program.name, s.error().str());
    record_event(ControlEvent::Kind::RevokeFailed, id, program.name,
                 s.error().str());
    return s.error();
  }

  for (const auto& [rpb, count] : entries_per_rpb) {
    resources_.release_entries(rpb, count);
  }
  resources_.erase_program(id);
  dataplane_.clear_claim_counter(id);
  tenants_.release(tenant, tenant_words, tenant_entries);
  record_event(ControlEvent::Kind::Revoke, id, program.name);
  free_ids_.push_back(id);
  programs_.erase(it);
  return {};
}

Status Controller::revoke_by_name(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  obs::TraceScope trace(telemetry_);
  LockHoldTimer hold(clock_, telemetry_);
  for (const auto& [id, program] : programs_) {
    if (program.name == name) return revoke_locked(id);
  }
  return Error{"no running program named '" + name + "'", "Controller",
               ErrorCode::NotFound};
}

void Controller::set_async_writes(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  updates_.set_async(enabled);
}

bool Controller::async_writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return updates_.async();
}

const InstalledProgram* Controller::program_unlocked(ProgramId id) const {
  const auto it = programs_.find(id);
  return it == programs_.end() ? nullptr : &it->second;
}

const InstalledProgram* Controller::program_by_name_unlocked(
    const std::string& name) const {
  for (const auto& [id, program] : programs_) {
    if (program.name == name) return &program;
  }
  return nullptr;
}

const InstalledProgram* Controller::program(ProgramId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  updates_.wait_idle();
  return program_unlocked(id);
}

const InstalledProgram* Controller::program_by_name(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  updates_.wait_idle();
  return program_by_name_unlocked(name);
}

std::vector<ProgramId> Controller::running_programs() const {
  std::lock_guard<std::mutex> lock(mu_);
  updates_.wait_idle();
  std::vector<ProgramId> ids;
  ids.reserve(programs_.size());
  for (const auto& [id, program] : programs_) ids.push_back(id);
  return ids;
}

std::size_t Controller::program_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  updates_.wait_idle();
  return programs_.size();
}

std::deque<ControlEvent> Controller::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  updates_.wait_idle();
  return events_;
}

Result<Word> Controller::read_memory(ProgramId id, const std::string& vmem,
                                     MemAddr vaddr) const {
  std::lock_guard<std::mutex> lock(mu_);
  updates_.wait_idle();
  return resources_.read_virtual(dataplane_, id, vmem, vaddr);
}

std::vector<rmt::Packet> Controller::drain_reports() {
  std::lock_guard<std::mutex> lock(mu_);
  updates_.wait_idle();
  return dataplane_.pipeline().drain_cpu_queue();
}

std::uint64_t Controller::program_packets(ProgramId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  updates_.wait_idle();
  return dataplane_.claimed_packets(id);
}

Result<std::vector<Word>> Controller::dump_memory(ProgramId id,
                                                  const std::string& vmem) const {
  std::lock_guard<std::mutex> lock(mu_);
  updates_.wait_idle();
  const auto* placements = resources_.program_placements(id);
  if (placements == nullptr) {
    return Error{"unknown program", "Controller", ErrorCode::NotFound};
  }
  const auto it = placements->find(vmem);
  if (it == placements->end()) {
    return Error{"unknown memory '" + vmem + "'", "Controller", ErrorCode::NotFound};
  }
  std::vector<Word> out;
  out.reserve(it->second.block.size);
  const auto& memory = dataplane_.rpb(it->second.rpb).memory();
  for (std::uint32_t a = 0; a < it->second.block.size; ++a) {
    out.push_back(memory.read(it->second.block.base + a));
  }
  return out;
}

Result<rmt::HashAlgo> Controller::hash_algo_for(ProgramId id,
                                                const std::string& vmem) const {
  std::lock_guard<std::mutex> lock(mu_);
  updates_.wait_idle();
  const InstalledProgram* prog = program_unlocked(id);
  if (prog == nullptr) {
    return Error{"unknown program", "Controller", ErrorCode::NotFound};
  }
  for (const auto& node : prog->ir.nodes) {
    const bool hashes_mem = node.op.kind == dp::OpKind::Hash5TupleMem ||
                            node.op.kind == dp::OpKind::HashHarMem;
    if (!hashes_mem || node.op.vmem != vmem) continue;
    const int logical = prog->alloc.x[static_cast<std::size_t>(node.depth - 1)];
    const int phys = dp::physical_rpb(logical, dataplane_.spec().total_rpbs());
    return dataplane_.rpb(phys).hash16_algo();
  }
  return Error{"program has no hash-addressed access to '" + vmem + "'",
               "Controller", ErrorCode::NotFound};
}

Status Controller::write_memory(ProgramId id, const std::string& vmem, MemAddr vaddr,
                                Word value) {
  std::lock_guard<std::mutex> lock(mu_);
  // Quiesce the async channel: the writer owns the dataplane while jobs are
  // in flight, and a CPU-side memory write must not race its entry writes.
  updates_.wait_idle();
  return resources_.write_virtual(dataplane_, id, vmem, vaddr, value);
}

Result<DefragReport> Controller::defragment(DefragOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  obs::TraceScope trace(telemetry_);
  LockHoldTimer hold(clock_, telemetry_);
  return defragment_locked(options);
}

DefragReport Controller::defragment_locked(const DefragOptions& options) {
  auto defrag_span = telemetry_->tracer.span("defrag", "ctrl");
  // Quiesce the channel: a move revokes the old copy, and the writer must
  // not own any handle vectors while we walk the program table. Moves
  // themselves commit inline *through* the writer in async mode.
  updates_.wait_idle();
  updates_.set_maintenance(true);

  DefragReport report;
  report.frag_start = resources_.total_fragmentation_words();
  std::set<ProgramId> skip;  // programs whose move failed this pass
  while (static_cast<int>(report.moves.size()) < options.max_moves) {
    const std::uint64_t frag_now = resources_.total_fragmentation_words();
    if (frag_now < options.min_gain_words) break;

    // Pick the move with the best *simulated* gain. Simulation replays the
    // exact reserve/release walk the transaction will take, so "gain" here
    // is what the metric will actually do — the monotonicity guarantee is
    // decided before any state changes.
    const auto snap = resources_.snapshot();
    ProgramId best_id = 0;
    std::uint64_t best_after = frag_now;
    for (const auto& [id, program] : programs_) {
      if (busy_ids_.count(id) != 0 || skip.count(id) != 0) continue;
      if (program.placements.empty()) continue;
      std::uint64_t after = 0;
      if (!simulate_compaction(snap, program, &after)) continue;
      if (after < best_after) {
        best_after = after;
        best_id = id;
      }
    }
    if (best_id == 0 || frag_now - best_after < options.min_gain_words) break;

    auto moved = compact_program_locked(best_id);
    if (!moved.ok()) {
      // Rolled back (injected fault or transient entry pressure): state is
      // exactly as before the attempt. Skip the program for this pass.
      ++report.failed_moves;
      skip.insert(best_id);
      continue;
    }
    const std::uint64_t frag_after = resources_.total_fragmentation_words();
    assert(frag_after == best_after && "defrag move diverged from simulation");

    DefragMove move;
    move.old_id = best_id;
    move.new_id = moved.value();
    move.name = programs_.at(moved.value()).name;
    move.frag_before = frag_now;
    move.frag_after = frag_after;
    telemetry_->monitor.defrag_moved(best_id, moved.value(), move.name, frag_now,
                                     frag_after);
    auto& m = telemetry_->metrics;
    m.counter("ctrl.defrag.moves").inc();
    m.counter("ctrl.defrag.words_reclaimed").inc(frag_now - frag_after);
    report.moves.push_back(std::move(move));
  }

  updates_.set_maintenance(false);
  report.frag_end = resources_.total_fragmentation_words();
  telemetry_->metrics.counter("ctrl.defrag.passes").inc();
  defrag_span.arg("moves", static_cast<std::uint64_t>(report.moves.size()));
  defrag_span.arg("reclaimed_words", report.frag_start - report.frag_end);
  return report;
}

Result<ProgramId> Controller::compact_program_locked(ProgramId old_id) {
  const InstalledProgram& old_program = programs_.at(old_id);
  // Local copies: the transaction holds the IR by reference for its whole
  // lifetime, and revoking the old copy erases its map node mid-function.
  const rp::TranslatedProgram ir = old_program.ir;
  rp::AllocationResult alloc = old_program.alloc;
  const TenantId tenant = old_program.tenant;

  // Same pinned stages (the stored alloc), fresh first-fit placements;
  // replacing=old_id carries the old copy's memory bytes into the new
  // blocks inside the same transaction, so program state survives the move.
  const ProgramId new_id = next_program_id();
  DeployTransaction txn(
      DeployContext{dataplane_, resources_, updates_, telemetry_}, ir,
      std::move(alloc), new_id, ++filter_generation_, old_id);
  if (auto s = txn.reserve(); !s.ok()) {
    recycle_failed_id(new_id);
    telemetry_->monitor.txn_rolled_back(new_id, ir.name, s.error().str());
    return s.error();
  }
  txn.plan_entries();
  txn.stage();
  auto installed = txn.commit();
  if (!installed.ok()) {
    recycle_failed_id(new_id);
    telemetry_->monitor.txn_rolled_back(new_id, ir.name, installed.error().str());
    record_event(ControlEvent::Kind::LinkFailed, new_id, ir.name,
                 installed.error().str());
    return installed.error();
  }
  telemetry_->monitor.txn_committed(new_id, ir.name);
  InstalledProgram program = std::move(installed).take();
  program.tenant = tenant;
  tenants_.charge(tenant, memory_demand(ir), entry_demand(ir));
  programs_.emplace(new_id, std::move(program));
  record_event(ControlEvent::Kind::Relink, new_id, ir.name, "defrag move");

  if (auto s = revoke_locked(old_id); !s.ok()) {
    // Old copy rolled back into service; retire the new copy instead.
    const Status undo = revoke_locked(new_id);
    assert(undo.ok());
    (void)undo;
    return s.error();
  }
  return new_id;
}

void Controller::set_auto_defrag(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  auto_defrag_ = enabled;
}

bool Controller::auto_defrag() const {
  std::lock_guard<std::mutex> lock(mu_);
  return auto_defrag_;
}

}  // namespace p4runpro::ctrl
