// Introspection / debugging tools for linked programs: a disassembler that
// renders the compiled allocation (which atomic operation runs in which
// physical RPB, round and branch) — the moral equivalent of dumping the
// bfrt tables from the prototype's CLI.
#pragma once

#include <string>

#include "control/update_engine.h"
#include "dataplane/dataplane_spec.h"

namespace p4runpro::obs {
struct Telemetry;
}

namespace p4runpro::ctrl {

/// Human-readable dump of a linked program: one line per RPB entry, in
/// execution order (round, physical RPB, branch), plus the memory map.
[[nodiscard]] std::string disassemble(const InstalledProgram& program,
                                      const dp::DataplaneSpec& spec);

/// Human-readable telemetry snapshot: counters, sampled gauges (zero-valued
/// per-stage gauges suppressed), histogram quantiles, and a span summary
/// aggregated by name. The operator-facing counterpart of the JSON-lines /
/// Chrome-trace exporters.
[[nodiscard]] std::string telemetry_report(const obs::Telemetry& telemetry);

/// Top-style data-plane health dashboard from the bundle's program monitor:
/// one row per known program (busiest first) with lifetime attribution
/// counters and rolling-window rates, the tail of the alert/lifecycle event
/// stream, and the flight-recorder state. The operator-facing counterpart
/// of obs::export_alerts_jsonl / obs::export_flight_jsonl.
[[nodiscard]] std::string health_report(const obs::Telemetry& telemetry,
                                        std::size_t event_tail = 8);

}  // namespace p4runpro::ctrl
