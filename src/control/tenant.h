// Tenant registry: per-tenant resource quotas and usage accounting for the
// multi-tenant control plane (docs/ARCHITECTURE.md "Multi-tenant control
// plane"). Quotas bound what one tenant can hold across all its installed
// programs — program count, total stage-memory words and total table
// entries — so a noisy tenant cannot starve the switch.
//
// Accounting model: sessions CHARGE their demand at admission time (before
// solving), not at commit time. Demand is computable straight from the IR
// (memory = sum of vmem sizes, entries = one per node / one per branch
// case) and equals the committed footprint exactly, so charge-then-refund
// keeps concurrent same-tenant sessions from overshooting a quota between
// check and commit. Any session failure refunds; revoke releases.
//
// Thread safety: internally synchronized (own mutex), never calls out while
// holding it — safe to use both off-lock (admission, before the session
// lock) and under the controller's session lock (revoke release). The
// registry mutex is a leaf lock: nothing else is ever acquired under it.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/result.h"

namespace p4runpro::ctrl {

/// Tenant identity. 0 is the default tenant: untagged sessions (the
/// single-operator paths: link, relink, chain links) charge against it, and
/// it is unlimited unless a quota is explicitly registered.
using TenantId = std::uint32_t;

/// Per-tenant resource bounds. 0 = unlimited for each dimension.
struct TenantQuota {
  std::uint32_t max_programs = 0;       ///< concurrently installed programs
  std::uint64_t max_memory_words = 0;   ///< total stage-memory words held
  std::uint64_t max_entries = 0;        ///< total table entries held
  double weight = 1.0;                  ///< fair-share weight (admission WFQ)
};

/// What a tenant currently holds (admitted sessions included: demand is
/// charged at admission and refunded on failure).
struct TenantUsage {
  std::uint32_t programs = 0;
  std::uint64_t memory_words = 0;
  std::uint64_t entries = 0;
  std::uint64_t admitted = 0;        ///< lifetime successful quota admissions
  std::uint64_t quota_rejected = 0;  ///< lifetime QuotaExceeded rejections
};

class TenantRegistry {
 public:
  /// Register (or replace) a tenant's quota. Unregistered tenants are
  /// unlimited with weight 1.0 — registration is opt-in throttling.
  void register_tenant(TenantId tenant, TenantQuota quota);

  [[nodiscard]] TenantQuota quota(TenantId tenant) const;
  [[nodiscard]] TenantUsage usage(TenantId tenant) const;
  [[nodiscard]] double weight(TenantId tenant) const;

  /// Check the tenant's quota against its current usage plus this demand
  /// and, when it fits, charge it (one program, `memory_words`, `entries`).
  /// Fails with QuotaExceeded (and counts the rejection) otherwise.
  Status admit(TenantId tenant, std::uint64_t memory_words, std::uint64_t entries);

  /// Charge without a quota check: serial/maintenance paths (relink of an
  /// existing program, defragmentation copies) must never be blocked by a
  /// full quota — their net usage is zero once the old version is released.
  void charge(TenantId tenant, std::uint64_t memory_words, std::uint64_t entries);

  /// Return a charge: `refund` for a session that failed after admission,
  /// `release` when an installed program is revoked. Identical accounting;
  /// the two names keep call sites self-describing. Clamped at zero.
  void refund(TenantId tenant, std::uint64_t memory_words, std::uint64_t entries);
  void release(TenantId tenant, std::uint64_t memory_words, std::uint64_t entries);

 private:
  void uncharge_locked(TenantId tenant, std::uint64_t memory_words,
                       std::uint64_t entries);

  mutable std::mutex mu_;
  std::map<TenantId, TenantQuota> quotas_;
  std::map<TenantId, TenantUsage> usage_;
};

}  // namespace p4runpro::ctrl
