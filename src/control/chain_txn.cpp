#include "control/chain_txn.h"

#include <cassert>
#include <utility>

#include "obs/telemetry.h"

namespace p4runpro::ctrl {

ChainTransaction::ChainTransaction(std::vector<ChainHop> hops,
                                   const rp::TranslatedProgram& ir,
                                   std::vector<rp::AllocationResult> allocs,
                                   ProgramId id, int filter_priority,
                                   ProgramId replacing, obs::Telemetry* telemetry)
    : hops_(std::move(hops)),
      ir_(ir),
      allocs_(std::move(allocs)),
      id_(id),
      filter_priority_(filter_priority),
      replacing_(replacing),
      telemetry_(telemetry) {
  assert(!hops_.empty());
  assert(hops_.size() == allocs_.size());
  residuals_.resize(hops_.size());
}

ChainTransaction::~ChainTransaction() {
  if (phase_ == Phase::Solved || phase_ == Phase::Staged) rollback_all();
}

Status ChainTransaction::stage_all() {
  assert(phase_ == Phase::Solved);
  auto stage_span = obs::span(telemetry_, "chain_txn.stage", "ctrl");
  stage_span.arg("hops", static_cast<std::uint64_t>(hops_.size()));

  txns_.reserve(hops_.size());
  for (std::size_t h = 0; h < hops_.size(); ++h) {
    txns_.push_back(std::make_unique<DeployTransaction>(
        DeployContext{*hops_[h].dataplane, *hops_[h].resources, *hops_[h].updates,
                      telemetry_},
        ir_, std::move(allocs_[h]), id_, filter_priority_, replacing_));
  }

  // Reserve everywhere first: any hop's AllocFailed aborts the chain before
  // a single dataplane write is even staged.
  for (std::size_t h = 0; h < txns_.size(); ++h) {
    if (auto s = txns_[h]->reserve(); !s.ok()) {
      faulted_hop_ = static_cast<int>(h);
      rollback_all();
      return s;
    }
  }
  for (auto& txn : txns_) {
    txn->plan_entries();
    txn->stage();
  }

  // Capture the pre-transaction bytes of every reserved block now, while
  // nothing has written to the dataplane: a later commit-unwind's memory
  // reset must be able to restore free memory byte-identically.
  for (std::size_t h = 0; h < txns_.size(); ++h) {
    for (const auto& [vmem, placement] : txns_[h]->placements()) {
      Residual residual;
      residual.vmem = vmem;
      residual.placement = placement;
      residual.words.reserve(placement.block.size);
      const auto& memory = hops_[h].dataplane->rpb(placement.rpb).memory();
      for (std::uint32_t a = 0; a < placement.block.size; ++a) {
        residual.words.push_back(memory.read(placement.block.base + a));
      }
      residuals_[h].push_back(std::move(residual));
    }
  }

  phase_ = Phase::Staged;
  return {};
}

Status ChainTransaction::commit_all() {
  assert(phase_ == Phase::Staged);
  auto commit_span = obs::span(telemetry_, "chain_txn.commit", "ctrl");
  commit_span.arg("hops", static_cast<std::uint64_t>(hops_.size()));
  commit_span.arg("ops", static_cast<std::uint64_t>(total_staged_ops()));

  bool all_async = true;
  for (const auto& hop : hops_) {
    all_async = all_async && hop.updates != nullptr && hop.updates->async();
  }
  if (all_async) {
    commit_span.arg("pipelined", "1");
    // Submit every hop's op-log before settling any: the per-hop writer
    // threads drain their channels concurrently, so chain update latency is
    // the slowest hop, not the sum of hops.
    for (auto& txn : txns_) txn->commit_submit();

    std::vector<std::unique_ptr<InstalledProgram>> committed(txns_.size());
    Status first_error;
    for (std::size_t h = 0; h < txns_.size(); ++h) {
      auto installed = txns_[h]->commit_finish();
      if (!installed.ok()) {
        // Keep settling the remaining hops — their writer jobs reference
        // their staged batches and must complete before we unwind anything.
        if (first_error.ok()) {
          faulted_hop_ = static_cast<int>(h);
          first_error = installed.error();
        }
        continue;
      }
      committed[h] = std::make_unique<InstalledProgram>(std::move(installed).take());
    }
    if (!first_error.ok()) {
      // Faulted hops rolled themselves back at finish; un-commit every hop
      // that settled successfully — including those AFTER the faulted hop
      // (they were already in flight when the fault surfaced).
      std::size_t committed_hops = 0;
      for (const auto& p : committed) committed_hops += p != nullptr ? 1u : 0u;
      auto unwind_span = obs::span(telemetry_, "chain_txn.unwind", "ctrl");
      unwind_span.arg("committed_hops", static_cast<std::uint64_t>(committed_hops));
      for (std::size_t g = committed.size(); g-- > 0;) {
        if (committed[g]) unwind_committed_hop(static_cast<int>(g), *committed[g]);
      }
      installed_.clear();
      phase_ = Phase::RolledBack;
      return first_error;
    }
    installed_.reserve(committed.size());
    for (auto& program : committed) installed_.push_back(std::move(*program));
    phase_ = Phase::Committed;
    return {};
  }

  for (std::size_t h = 0; h < txns_.size(); ++h) {
    auto installed = txns_[h]->commit();
    if (!installed.ok()) {
      // Hop h's engine journal already restored hop h and the transaction
      // rolled its reservations back. Un-commit every hop before it and
      // release the reservations of every hop after it.
      faulted_hop_ = static_cast<int>(h);
      auto unwind_span = obs::span(telemetry_, "chain_txn.unwind", "ctrl");
      unwind_span.arg("committed_hops", static_cast<std::uint64_t>(h));
      for (std::size_t g = h; g-- > 0;) unwind_committed_hop(static_cast<int>(g));
      for (std::size_t g = h + 1; g < txns_.size(); ++g) txns_[g]->rollback();
      installed_.clear();
      phase_ = Phase::RolledBack;
      return installed.error();
    }
    installed_.push_back(std::move(installed).take());
  }
  phase_ = Phase::Committed;
  return {};
}

void ChainTransaction::rollback_all() {
  if (phase_ == Phase::Committed || phase_ == Phase::RolledBack) return;
  for (auto& txn : txns_) {
    if (txn) txn->rollback();
  }
  installed_.clear();
  phase_ = Phase::RolledBack;
}

void ChainTransaction::unwind_commit() {
  assert(phase_ == Phase::Committed);
  auto unwind_span = obs::span(telemetry_, "chain_txn.unwind", "ctrl");
  unwind_span.arg("committed_hops", static_cast<std::uint64_t>(hops_.size()));
  for (std::size_t g = hops_.size(); g-- > 0;) {
    unwind_committed_hop(static_cast<int>(g));
  }
  installed_.clear();
  phase_ = Phase::RolledBack;
}

void ChainTransaction::unwind_committed_hop(int hop) {
  unwind_committed_hop(hop, installed_[static_cast<std::size_t>(hop)]);
}

void ChainTransaction::unwind_committed_hop(int hop, InstalledProgram& program) {
  ChainHop& ctx = hops_[static_cast<std::size_t>(hop)];

  std::map<int, std::uint32_t> entries_per_rpb;
  for (const auto& [rpb, handle] : program.rpb_handles) {
    (void)handle;
    ++entries_per_rpb[rpb];
  }

  // Consistent remove through the hop's own engine (filters first, so the
  // half-deployed program is atomically invisible; memory reset last). The
  // unwind itself must not fault: faults fire once and have already fired.
  const Status removed = ctx.updates->remove(program);
  assert(removed.ok() && "chain unwind remove must not fault (single-fault model)");
  (void)removed;

  for (const auto& [rpb, count] : entries_per_rpb) {
    ctx.resources->release_entries(rpb, count);
  }
  ctx.resources->erase_program(id_);
  ctx.dataplane->init_block().clear_counter(id_);

  // remove() zeroed the blocks; put the pre-transaction residual bytes back
  // so even free memory is byte-identical. The inverse op is discarded —
  // this IS the rollback.
  for (const Residual& residual : residuals_[static_cast<std::size_t>(hop)]) {
    if (residual.words.empty()) continue;
    dp::WriteOp op;
    op.kind = dp::WriteOp::Kind::RestoreMemRange;
    op.mem_rpb = residual.placement.rpb;
    op.mem_base = residual.placement.block.base;
    op.mem_size = static_cast<std::uint32_t>(residual.words.size());
    op.mem_words = residual.words;
    op.vmem = residual.vmem;
    auto applied = ctx.dataplane->apply(op);
    assert(applied.ok());
    (void)applied;
  }
}

std::size_t ChainTransaction::staged_ops(int hop) const {
  const auto& txn = txns_[static_cast<std::size_t>(hop)];
  return txn ? txn->staged_batch().size() : 0;
}

std::size_t ChainTransaction::total_staged_ops() const {
  std::size_t total = 0;
  for (const auto& txn : txns_) {
    if (txn) total += txn->staged_batch().size();
  }
  return total;
}

}  // namespace p4runpro::ctrl
