// Consistent update engine (paper §4.3 "Consistent Update", Fig. 6) —
// the *executor* of staged op-logs. Deploy/relink/revoke transactions
// (ctrl::DeployTransaction) stage a declarative dp::WriteBatch; this engine
// walks the batch, pushing every write through a simulated bfrt channel
// whose latency model is charged to the virtual clock (the paper's
// update-delay numbers are dominated by exactly these per-entry gRPC
// writes), and stacks the exact inverse of every applied op into a
// rollback journal. A control-channel fault at ANY write index unwinds the
// journal in reverse, restoring a byte-identical pre-transaction dataplane
// — tables, memory contents and resource-manager occupancy included.
//
// Ordering guarantees (no incorrectly processed packet is ever exposed):
//   add:    recirculation entries -> RPB entries -> init filters last
//   delete: init filters first -> RPB/recirculation entries ->
//           lock + reset + unlock memory
// Because the program id is assigned only by the init filter, a program is
// invisible until its last add step and atomically disabled by the first
// delete step. The op-log builders (rp::stage_install / rp::stage_remove)
// encode this order; the executor never reorders.
//
// Asynchronous channel (docs/ARCHITECTURE.md "Async control channel"):
// set_async(true) attaches a per-engine writer thread (AsyncWriter) that
// drains submitted op-logs through the simulated channel off the caller's
// thread. submit_install / submit_remove capture the virtual submission
// time under the session lock and enqueue the job; the writer applies the
// dataplane ops and *records* the channel charges against its own channel
// cursor (it never touches the clock or the telemetry bundle); finish_*
// waits for completion, advances the clock to the channel's completion
// time, and replays the recorded charges as closed "bfrt.*" spans carrying
// the submit-time trace id. execute_install / remove auto-route through
// the writer in async mode, so single-call flows (and the chain unwind
// paths) behave identically — they just block inline. Adjacent same-kind
// batches with no idle channel gap coalesce into one multi-batch
// submission: the follow-up batch skips the per-batch channel overhead
// (ctrl.bfrt.coalesced_batches counts them). Faults reported by the writer
// unwind on the writer thread exactly like the serial path, so a fault at
// any write index still restores byte-identical state.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "compiler/entrygen.h"
#include "compiler/ir.h"
#include "compiler/solver.h"
#include "control/async_writer.h"
#include "control/resource_manager.h"
#include "control/tenant.h"
#include "dataplane/runpro_dataplane.h"
#include "dataplane/write_op.h"

namespace p4runpro::obs {
struct Telemetry;
}

namespace p4runpro::ctrl {

/// Latency model of the control channel (bfrt_grpc on the paper's 4-core
/// ONL switch CPU). Values calibrated so the generated entry counts land in
/// the paper's Table 1 range; see EXPERIMENTS.md.
struct BfrtCostModel {
  double per_entry_write_us = 500.0;      ///< one table-entry add/delete
  double per_batch_overhead_us = 500.0;   ///< per update batch (channel RTT, sync)
  double memory_reset_us_per_kb = 18.0;   ///< register range reset via the fast block API
};

/// A linked (running) program: everything needed to monitor and revoke it.
struct InstalledProgram {
  ProgramId id = 0;
  std::string name;
  /// Owning tenant (quota accounting); 0 = default tenant.
  TenantId tenant = 0;
  rp::TranslatedProgram ir;
  rp::AllocationResult alloc;
  rp::EntryPlan plan;
  std::map<std::string, VmemPlacement> placements;

  // data-plane handles
  std::vector<dp::InitBlock::InstalledFilter> filter_handles;
  std::vector<std::pair<int, rmt::EntryHandle>> rpb_handles;  // (rpb, handle)
  std::vector<rmt::EntryHandle> recirc_handles;
};

class UpdateEngine {
 public:
  UpdateEngine(dp::RunproDataplane& dataplane, ResourceManager& resources,
               SimClock& clock, BfrtCostModel cost = {})
      : dataplane_(dataplane), resources_(resources), clock_(clock), cost_(cost) {}

  /// The handles an executed install op-log produced, in batch order.
  struct AppliedEntries {
    std::vector<dp::InitBlock::InstalledFilter> filter_handles;
    std::vector<std::pair<int, rmt::EntryHandle>> rpb_handles;
    std::vector<rmt::EntryHandle> recirc_handles;
  };

  /// One charge the writer pushed through the virtual channel, in channel
  /// order. Replayed into the tracer/metrics at finish time.
  struct ChannelCharge {
    enum class Kind : std::uint8_t { Batch, MemReset };
    Kind kind = Kind::Batch;
    std::string label;        ///< batch: "add.rpb" etc.; mem reset: vmem name
    std::size_t entries = 0;  ///< batch: entry count; mem reset: bucket count
    SimClock::Nanos start_ns = 0;
    SimClock::Nanos end_ns = 0;
    bool coalesced = false;   ///< batch rode a same-kind predecessor's sync
  };

  /// Everything an async write job produces. Filled on the writer thread,
  /// read by the caller after the completion future resolves (the future
  /// wait is the happens-before edge).
  struct WriteOutcome {
    std::optional<Result<AppliedEntries>> applied;  ///< install jobs
    std::optional<Status> removed;                  ///< remove jobs
    std::vector<ChannelCharge> charges;
    /// Memory blocks a successful remove reset; freed by finish_remove
    /// (the writer never touches the resource manager).
    std::vector<std::pair<int, MemBlock>> deferred_frees;
    SimClock::Nanos completion_ns = 0;
    std::uint64_t trace = 0;  ///< trace id active at submission
    bool maintenance = false;  ///< submitted while in maintenance mode
    /// Remove jobs own their staged batch (install batches are owned by the
    /// transaction, which outlives the finish).
    std::shared_ptr<dp::WriteBatch> batch;
  };

  /// Handle to an in-flight submitted write. Obtain with submit_*, settle
  /// with the matching finish_* (every submit MUST be finished — the job
  /// references caller-owned state).
  struct PendingWrite {
    std::shared_ptr<WriteOutcome> outcome;
    std::future<void> done;
    SimClock::Nanos submitted_ns = 0;
    std::size_t ops = 0;
  };

  /// Execute a staged install op-log (WriteMemRange carry-over ops plus
  /// Add* entry ops in consistent-update order). Consecutive ops of one
  /// kind are charged as one bfrt batch. On any failure — injected channel
  /// fault or a rejected write — the rollback journal unwinds every applied
  /// op and the error (ChannelError for faults) is returned; the dataplane
  /// is then byte-identical to its pre-call state. In async mode this
  /// routes through the writer and blocks inline (submit + finish).
  Result<AppliedEntries> execute_install(const dp::WriteBatch& batch);

  /// Consistently remove a program and release its memory. On success the
  /// program's handle vectors and placements are cleared (entry
  /// reservations stay the caller's to release). On a mid-removal channel
  /// fault the journal restores everything already deleted — including
  /// re-reserving reset memory blocks and writing their contents back — and
  /// `program` is left fully installed with its fresh handles. Async mode
  /// routes through the writer and blocks inline.
  Status remove(InstalledProgram& program);

  // --- asynchronous channel ----------------------------------------------

  /// Attach (true) or drain-and-detach (false) the writer thread. Call only
  /// under the session lock with no write in flight. Async mode is opt-in;
  /// the default (serial) behavior is unchanged.
  void set_async(bool enabled);
  [[nodiscard]] bool async() const noexcept { return writer_ != nullptr; }

  /// Submit an install op-log to the writer. Caller must hold the session
  /// lock (the submission time is read off the virtual clock) and must keep
  /// `batch` alive until finish_install returns. Returns immediately; the
  /// channel latency is charged when finish_install resolves the write.
  [[nodiscard]] PendingWrite submit_install(const dp::WriteBatch& batch);
  /// Settle a submitted install: wait for the writer, advance the clock to
  /// the channel completion time, replay the recorded charges into the
  /// telemetry bundle and return the applied handles (or the fault, with
  /// the dataplane already unwound). Caller must hold the session lock.
  Result<AppliedEntries> finish_install(PendingWrite& pending);

  /// Submit a consistent remove. Stages the op-log from the program's
  /// current handles under the session lock and announces the revoke (the
  /// program is logically retired at submission — its first delete step is
  /// ordered before any later submission on this channel). The writer
  /// mutates `program`'s handles (cleared on success, patched fresh on a
  /// fault-unwind); callers must not touch the program until finish_remove.
  [[nodiscard]] PendingWrite submit_remove(InstalledProgram& program);
  /// Settle a submitted remove: on success frees the reset memory blocks
  /// (deferred from the writer) — entry reservations stay the caller's to
  /// release; on a fault re-announces the restored program. Caller must
  /// hold the session lock.
  Status finish_remove(PendingWrite& pending, InstalledProgram& program);

  /// Block until the writer has drained every submitted job (no-op in
  /// serial mode). The read-side quiesce point: const queries take the
  /// session lock and wait here, so they never observe a half-written
  /// program. Deadlock-free because the writer never takes the session
  /// lock.
  void wait_idle() const {
    if (writer_) writer_->wait_idle();
  }

  /// Announce a completed deploy to the health monitor (the program became
  /// visible to traffic with its last filter write). Entry count =
  /// everything the update wrote, the same figure the dashboard reports.
  void announce_deploy(const InstalledProgram& program);

  [[nodiscard]] const BfrtCostModel& cost_model() const noexcept { return cost_; }

  /// Telemetry sink for per-batch write spans ("bfrt.batch") and the
  /// "ctrl.bfrt.*" write counters; null disables (set by the controller).
  void set_telemetry(obs::Telemetry* telemetry) noexcept { telemetry_ = telemetry; }

  /// Maintenance mode: batches charged while set also count toward
  /// "ctrl.bfrt.maintenance_batches", so operator dashboards can separate
  /// defrag/compaction channel traffic from tenant-driven deploys. Toggled
  /// by Controller::defragment around its moves (under the session lock).
  void set_maintenance(bool on) noexcept { maintenance_ = on; }
  [[nodiscard]] bool maintenance() const noexcept { return maintenance_; }

  /// Chain-hop label for this engine's write spans: ChainController tags
  /// each hop's engine with its index so "bfrt.batch" spans (and trace
  /// reports built from them) say which switch the write landed on. -1 (the
  /// default, single-switch) omits the tag.
  void set_hop_label(int hop) noexcept { hop_label_ = hop; }
  [[nodiscard]] int hop_label() const noexcept { return hop_label_; }

  /// Fault injection (tests): make the Nth subsequent entry write fail,
  /// simulating a control-channel error mid-update. The fault fires once
  /// and disarms (rollback writes are never faulted). -1 disables. Each
  /// engine drives one switch's channel, so a chain harness arms exactly
  /// the hop it wants to fault (per-hop injection; ChainController exposes
  /// `updates(hop)` for this). In async mode the fault fires from the
  /// writer thread, at the same write index.
  void set_fault_after_writes(int writes) { fault_after_ = writes; }
  /// True while an injected fault is armed and has not fired yet. Lets
  /// fault-matrix sweeps distinguish "op succeeded past the batch end"
  /// (fault still armed) from "fault fired and rolled back". In async mode
  /// call only with the channel quiesced (e.g. after a finish).
  [[nodiscard]] bool fault_armed() const noexcept { return fault_after_ >= 0; }

  /// Lifetime count of write ops this engine applied on the forward path
  /// (entry writes, memory carry-overs and resets; journal unwinds are not
  /// counted). One unit here is one fault index of set_fault_after_writes,
  /// so `writes_applied()` after a clean run bounds a full fault sweep.
  [[nodiscard]] std::uint64_t writes_applied() const noexcept {
    return writes_applied_;
  }

  /// Test/verification hook: invoked after every individual entry
  /// operation, i.e. at every intermediate data-plane state of an update.
  /// Used by the consistency property tests to inject packets mid-update
  /// and assert no incorrectly processed packet is ever exposed (§4.3).
  /// Serial mode only (in async mode the hook would run on the writer
  /// thread).
  void set_step_observer(std::function<void()> observer) {
    step_observer_ = std::move(observer);
  }

 private:
  /// One rollback-journal record: the inverse of an applied op, tagged with
  /// the batch index it undoes (handle restoration after a failed remove).
  struct JournalEntry {
    std::size_t batch_index = 0;
    dp::WriteOp inverse;
  };

  /// The writer thread's position on the virtual channel. `now` advances as
  /// charges are recorded; `last_label` is the label of the last batch
  /// pushed with no idle gap after it (the coalescing predecessor). Owned
  /// by the writer thread while a job runs; persisted into the engine's
  /// channel_cursor state between jobs.
  struct ChannelCursor {
    SimClock::Nanos now = 0;
    std::string last_label;
    std::vector<ChannelCharge>* charges = nullptr;
  };

  /// Charge one batched bfrt write of `count` entries. Serial (null
  /// cursor): advance the clock, open a live "bfrt.batch" span, bump the
  /// write counters. Async (writer thread): record a ChannelCharge against
  /// the cursor, coalescing with a same-label predecessor (skips the
  /// per-batch overhead).
  void charge_batch(std::size_t count, const char* what, ChannelCursor* cursor);
  /// Apply one memory-reset op. Serial: lock, zero, charge the block-reset
  /// model, unlock (returns the block to the free list). Async: zero and
  /// record the charge; the free is deferred to finish_remove via
  /// `outcome->deferred_frees`.
  dp::WriteOp apply_mem_reset(const dp::WriteOp& op, ChannelCursor* cursor,
                              WriteOutcome* outcome);
  /// Unwind a journal in reverse order (uncharged — rollback writes are
  /// free, matching the pre-refactor unwinding).
  void unwind(std::vector<JournalEntry>& journal);
  /// Unwind a failed removal: re-reserve reset blocks, restore their bytes,
  /// re-add deleted entries and patch the fresh handles back into `program`.
  /// `deferred_frees` true (async): the reset blocks were never freed (the
  /// free is deferred to finish), so reclaiming them is skipped.
  void rollback_remove(const dp::WriteBatch& batch,
                       std::vector<JournalEntry>& journal,
                       InstalledProgram& program, bool deferred_frees);

  /// Shared forward-path cores. Null cursor = serial (live telemetry, clock
  /// charges); non-null = writer thread (charge recording only).
  Result<AppliedEntries> run_install(const dp::WriteBatch& batch,
                                     ChannelCursor* cursor);
  Status run_remove(const dp::WriteBatch& batch, InstalledProgram& program,
                    ChannelCursor* cursor, WriteOutcome* outcome);

  /// Writer-thread bracket around one job: position the cursor at
  /// max(submission, channel backlog), dropping the coalescing label across
  /// idle gaps; persist the cursor when the job ends.
  [[nodiscard]] ChannelCursor begin_job(SimClock::Nanos submitted_ns,
                                        WriteOutcome* outcome);
  void end_job(const ChannelCursor& cursor);

  /// Replay a completed job's charges into the tracer (closed spans at the
  /// recorded virtual times, stamped with the submit-time trace id) and the
  /// ctrl.bfrt.* counters. Caller holds the session lock.
  void emit_charges(const WriteOutcome& outcome);
  void update_queue_gauge();

  /// Called once per applied forward op — the same granularity as the fault
  /// indices — so it also maintains writes_applied().
  void observe_step() {
    ++writes_applied_;
    if (step_observer_) step_observer_();
  }

  /// Returns true when the next write should fail (and disarms).
  [[nodiscard]] bool inject_fault() {
    if (fault_after_ < 0) return false;
    if (fault_after_ == 0) {
      fault_after_ = -1;
      return true;
    }
    --fault_after_;
    return false;
  }

  int fault_after_ = -1;
  int hop_label_ = -1;
  bool maintenance_ = false;
  std::uint64_t writes_applied_ = 0;
  std::function<void()> step_observer_;
  obs::Telemetry* telemetry_ = nullptr;
  dp::RunproDataplane& dataplane_;
  ResourceManager& resources_;
  SimClock& clock_;
  BfrtCostModel cost_;

  // Channel-cursor state between async jobs: virtual time the channel
  // drains at, and the coalescing label. Touched only on the writer thread
  // (begin_job/end_job); the jobs' FIFO order makes it deterministic.
  SimClock::Nanos channel_cursor_ns_ = 0;
  std::string channel_last_label_;
  std::unique_ptr<AsyncWriter> writer_;  ///< non-null = async mode
};

}  // namespace p4runpro::ctrl
