// Consistent update engine (paper §4.3 "Consistent Update", Fig. 6) —
// the *executor* of staged op-logs. Deploy/relink/revoke transactions
// (ctrl::DeployTransaction) stage a declarative dp::WriteBatch; this engine
// walks the batch, pushing every write through a simulated bfrt channel
// whose latency model is charged to the virtual clock (the paper's
// update-delay numbers are dominated by exactly these per-entry gRPC
// writes), and stacks the exact inverse of every applied op into a
// rollback journal. A control-channel fault at ANY write index unwinds the
// journal in reverse, restoring a byte-identical pre-transaction dataplane
// — tables, memory contents and resource-manager occupancy included.
//
// Ordering guarantees (no incorrectly processed packet is ever exposed):
//   add:    recirculation entries -> RPB entries -> init filters last
//   delete: init filters first -> RPB/recirculation entries ->
//           lock + reset + unlock memory
// Because the program id is assigned only by the init filter, a program is
// invisible until its last add step and atomically disabled by the first
// delete step. The op-log builders (rp::stage_install / rp::stage_remove)
// encode this order; the executor never reorders.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "compiler/entrygen.h"
#include "compiler/ir.h"
#include "compiler/solver.h"
#include "control/resource_manager.h"
#include "dataplane/runpro_dataplane.h"
#include "dataplane/write_op.h"

namespace p4runpro::obs {
struct Telemetry;
}

namespace p4runpro::ctrl {

/// Latency model of the control channel (bfrt_grpc on the paper's 4-core
/// ONL switch CPU). Values calibrated so the generated entry counts land in
/// the paper's Table 1 range; see EXPERIMENTS.md.
struct BfrtCostModel {
  double per_entry_write_us = 500.0;      ///< one table-entry add/delete
  double per_batch_overhead_us = 500.0;   ///< per update batch (channel RTT, sync)
  double memory_reset_us_per_kb = 18.0;   ///< register range reset via the fast block API
};

/// A linked (running) program: everything needed to monitor and revoke it.
struct InstalledProgram {
  ProgramId id = 0;
  std::string name;
  rp::TranslatedProgram ir;
  rp::AllocationResult alloc;
  rp::EntryPlan plan;
  std::map<std::string, VmemPlacement> placements;

  // data-plane handles
  std::vector<dp::InitBlock::InstalledFilter> filter_handles;
  std::vector<std::pair<int, rmt::EntryHandle>> rpb_handles;  // (rpb, handle)
  std::vector<rmt::EntryHandle> recirc_handles;
};

class UpdateEngine {
 public:
  UpdateEngine(dp::RunproDataplane& dataplane, ResourceManager& resources,
               SimClock& clock, BfrtCostModel cost = {})
      : dataplane_(dataplane), resources_(resources), clock_(clock), cost_(cost) {}

  /// The handles an executed install op-log produced, in batch order.
  struct AppliedEntries {
    std::vector<dp::InitBlock::InstalledFilter> filter_handles;
    std::vector<std::pair<int, rmt::EntryHandle>> rpb_handles;
    std::vector<rmt::EntryHandle> recirc_handles;
  };

  /// Execute a staged install op-log (WriteMemRange carry-over ops plus
  /// Add* entry ops in consistent-update order). Consecutive ops of one
  /// kind are charged as one bfrt batch. On any failure — injected channel
  /// fault or a rejected write — the rollback journal unwinds every applied
  /// op and the error (ChannelError for faults) is returned; the dataplane
  /// is then byte-identical to its pre-call state.
  Result<AppliedEntries> execute_install(const dp::WriteBatch& batch);

  /// Consistently remove a program and release its memory. On success the
  /// program's handle vectors and placements are cleared (entry
  /// reservations stay the caller's to release). On a mid-removal channel
  /// fault the journal restores everything already deleted — including
  /// re-reserving reset memory blocks and writing their contents back — and
  /// `program` is left fully installed with its fresh handles.
  Status remove(InstalledProgram& program);

  /// Announce a completed deploy to the health monitor (the program became
  /// visible to traffic with its last filter write). Entry count =
  /// everything the update wrote, the same figure the dashboard reports.
  void announce_deploy(const InstalledProgram& program);

  [[nodiscard]] const BfrtCostModel& cost_model() const noexcept { return cost_; }

  /// Telemetry sink for per-batch write spans ("bfrt.batch") and the
  /// "ctrl.bfrt.*" write counters; null disables (set by the controller).
  void set_telemetry(obs::Telemetry* telemetry) noexcept { telemetry_ = telemetry; }

  /// Chain-hop label for this engine's write spans: ChainController tags
  /// each hop's engine with its index so "bfrt.batch" spans (and trace
  /// reports built from them) say which switch the write landed on. -1 (the
  /// default, single-switch) omits the tag.
  void set_hop_label(int hop) noexcept { hop_label_ = hop; }
  [[nodiscard]] int hop_label() const noexcept { return hop_label_; }

  /// Fault injection (tests): make the Nth subsequent entry write fail,
  /// simulating a control-channel error mid-update. The fault fires once
  /// and disarms (rollback writes are never faulted). -1 disables. Each
  /// engine drives one switch's channel, so a chain harness arms exactly
  /// the hop it wants to fault (per-hop injection; ChainController exposes
  /// `updates(hop)` for this).
  void set_fault_after_writes(int writes) { fault_after_ = writes; }
  /// True while an injected fault is armed and has not fired yet. Lets
  /// fault-matrix sweeps distinguish "op succeeded past the batch end"
  /// (fault still armed) from "fault fired and rolled back".
  [[nodiscard]] bool fault_armed() const noexcept { return fault_after_ >= 0; }

  /// Lifetime count of write ops this engine applied on the forward path
  /// (entry writes, memory carry-overs and resets; journal unwinds are not
  /// counted). One unit here is one fault index of set_fault_after_writes,
  /// so `writes_applied()` after a clean run bounds a full fault sweep.
  [[nodiscard]] std::uint64_t writes_applied() const noexcept {
    return writes_applied_;
  }

  /// Test/verification hook: invoked after every individual entry
  /// operation, i.e. at every intermediate data-plane state of an update.
  /// Used by the consistency property tests to inject packets mid-update
  /// and assert no incorrectly processed packet is ever exposed (§4.3).
  void set_step_observer(std::function<void()> observer) {
    step_observer_ = std::move(observer);
  }

 private:
  /// One rollback-journal record: the inverse of an applied op, tagged with
  /// the batch index it undoes (handle restoration after a failed remove).
  struct JournalEntry {
    std::size_t batch_index = 0;
    dp::WriteOp inverse;
  };

  /// Charge one batched bfrt write of `count` entries to the virtual clock
  /// and record it as a "bfrt.batch" span tagged with `what`.
  void charge_entries(std::size_t count, const char* what);
  /// Apply one memory-reset op: lock, zero, charge the block-reset model,
  /// unlock (returns the block to the free list).
  dp::WriteOp apply_mem_reset(const dp::WriteOp& op);
  /// Unwind a journal in reverse order (uncharged — rollback writes are
  /// free, matching the pre-refactor unwinding).
  void unwind(std::vector<JournalEntry>& journal);
  /// Unwind a failed removal: re-reserve reset blocks, restore their bytes,
  /// re-add deleted entries and patch the fresh handles back into `program`.
  void rollback_remove(const dp::WriteBatch& batch,
                       std::vector<JournalEntry>& journal,
                       InstalledProgram& program);

  /// Called once per applied forward op — the same granularity as the fault
  /// indices — so it also maintains writes_applied().
  void observe_step() {
    ++writes_applied_;
    if (step_observer_) step_observer_();
  }

  /// Returns true when the next write should fail (and disarms).
  [[nodiscard]] bool inject_fault() {
    if (fault_after_ < 0) return false;
    if (fault_after_ == 0) {
      fault_after_ = -1;
      return true;
    }
    --fault_after_;
    return false;
  }

  int fault_after_ = -1;
  int hop_label_ = -1;
  std::uint64_t writes_applied_ = 0;
  std::function<void()> step_observer_;
  obs::Telemetry* telemetry_ = nullptr;
  dp::RunproDataplane& dataplane_;
  ResourceManager& resources_;
  SimClock& clock_;
  BfrtCostModel cost_;
};

}  // namespace p4runpro::ctrl
