// Consistent update engine (paper §4.3 "Consistent Update", Fig. 6).
// Entries are written through a simulated bfrt channel whose latency model
// is charged to the virtual clock; the paper's update-delay numbers are
// dominated by exactly these per-entry gRPC writes.
//
// Ordering guarantees (no incorrectly processed packet is ever exposed):
//   add:    recirculation entries -> RPB entries -> init filters last
//   delete: init filters first -> RPB/recirculation entries ->
//           lock + reset + unlock memory
// Because the program id is assigned only by the init filter, a program is
// invisible until its last add step and atomically disabled by the first
// delete step.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "compiler/entrygen.h"
#include "compiler/ir.h"
#include "compiler/solver.h"
#include "control/resource_manager.h"
#include "dataplane/runpro_dataplane.h"

namespace p4runpro::obs {
struct Telemetry;
}

namespace p4runpro::ctrl {

/// Latency model of the control channel (bfrt_grpc on the paper's 4-core
/// ONL switch CPU). Values calibrated so the generated entry counts land in
/// the paper's Table 1 range; see EXPERIMENTS.md.
struct BfrtCostModel {
  double per_entry_write_us = 500.0;      ///< one table-entry add/delete
  double per_batch_overhead_us = 500.0;   ///< per update batch (channel RTT, sync)
  double memory_reset_us_per_kb = 18.0;   ///< register range reset via the fast block API
};

/// A linked (running) program: everything needed to monitor and revoke it.
struct InstalledProgram {
  ProgramId id = 0;
  std::string name;
  rp::TranslatedProgram ir;
  rp::AllocationResult alloc;
  rp::EntryPlan plan;
  std::map<std::string, VmemPlacement> placements;

  // data-plane handles
  std::vector<dp::InitBlock::InstalledFilter> filter_handles;
  std::vector<std::pair<int, rmt::EntryHandle>> rpb_handles;  // (rpb, handle)
  std::vector<rmt::EntryHandle> recirc_handles;
};

class UpdateEngine {
 public:
  UpdateEngine(dp::RunproDataplane& dataplane, ResourceManager& resources,
               SimClock& clock, BfrtCostModel cost = {})
      : dataplane_(dataplane), resources_(resources), clock_(clock), cost_(cost) {}

  /// Consistently install a program (entries already planned, memory
  /// already committed in the resource manager).
  Result<InstalledProgram> install(const rp::TranslatedProgram& ir,
                                   const rp::AllocationResult& alloc,
                                   rp::EntryPlan plan,
                                   std::map<std::string, VmemPlacement> placements,
                                   const std::string& name);

  /// Consistently remove a program and release its resources.
  void remove(InstalledProgram& program);

  [[nodiscard]] const BfrtCostModel& cost_model() const noexcept { return cost_; }

  /// Telemetry sink for per-batch write spans ("bfrt.batch") and the
  /// "ctrl.bfrt.*" write counters; null disables (set by the controller).
  void set_telemetry(obs::Telemetry* telemetry) noexcept { telemetry_ = telemetry; }

  /// Fault injection (tests): make the Nth subsequent entry write fail,
  /// simulating a control-channel error mid-update. -1 disables.
  void set_fault_after_writes(int writes) { fault_after_ = writes; }

  /// Test/verification hook: invoked after every individual entry
  /// operation, i.e. at every intermediate data-plane state of an update.
  /// Used by the consistency property tests to inject packets mid-update
  /// and assert no incorrectly processed packet is ever exposed (§4.3).
  void set_step_observer(std::function<void()> observer) {
    step_observer_ = std::move(observer);
  }

 private:
  /// Charge one batched bfrt write of `count` entries to the virtual clock
  /// and record it as a "bfrt.batch" span tagged with `what`.
  void charge_entries(std::size_t count, const char* what);
  void observe_step() {
    if (step_observer_) step_observer_();
  }

  /// Returns true when the next write should fail (and consumes it).
  [[nodiscard]] bool inject_fault() {
    if (fault_after_ < 0) return false;
    if (fault_after_ == 0) return true;
    --fault_after_;
    return false;
  }

  int fault_after_ = -1;
  std::function<void()> step_observer_;
  obs::Telemetry* telemetry_ = nullptr;
  dp::RunproDataplane& dataplane_;
  ResourceManager& resources_;
  SimClock& clock_;
  BfrtCostModel cost_;
};

}  // namespace p4runpro::ctrl
