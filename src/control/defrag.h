// Defragmentation planner: simulation-first compaction of installed
// programs. A long-lived switch accumulates external fragmentation (the
// paper's §7 first-fit allocator only splits, the free lists only coalesce
// on revoke), until programs the solver says fit are rejected at reserve
// time because no single free block is large enough. The defrag pass
// migrates installed programs through the existing relink machinery — a
// DeployTransaction built from the program's *stored* IR and allocation
// (same pinned stages) with `replacing = old_id`, so memory contents carry
// over and traffic always sees exactly one complete copy — then revokes the
// old copy, whose freed blocks coalesce.
//
// Simulation-first: because the rebuilt transaction reuses the stored
// allocation, its reserve() is exactly reproducible against a free-list
// copy (same first-fit walk, same vmem order, same sizes). A candidate move
// is executed only when the simulated post-move fragmentation improves by
// at least min_gain_words, which is what makes the fragmentation metric
// provably non-increasing across a pass (the invariant the defrag test
// asserts move-by-move).
//
// Metric: sum over RPBs of (free words - largest free block) — the words
// that exist but cannot serve a maximal contiguous request.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "control/resource_manager.h"
#include "control/update_engine.h"

namespace p4runpro::ctrl {

struct DefragOptions {
  /// Upper bound on program migrations in one pass.
  int max_moves = 32;
  /// Minimum simulated fragmentation improvement (words) for a move to be
  /// worth its channel writes.
  std::uint64_t min_gain_words = 1;
};

/// One executed migration.
struct DefragMove {
  ProgramId old_id = 0;
  ProgramId new_id = 0;
  std::string name;
  std::uint64_t frag_before = 0;  ///< global metric just before this move
  std::uint64_t frag_after = 0;   ///< global metric just after this move
};

struct DefragReport {
  std::uint64_t frag_start = 0;
  std::uint64_t frag_end = 0;
  std::vector<DefragMove> moves;
  /// Simulation-approved moves whose commit failed (e.g. injected channel
  /// fault); the rollback journal restored state, so the metric held.
  int failed_moves = 0;
};

/// Fragmentation metric over a set of free lists (each sorted by base).
[[nodiscard]] std::uint64_t fragmentation_words(
    const std::vector<std::vector<MemBlock>>& free_mem);

/// Replay `program`'s reserve (first-fit at its stored allocation) against
/// a copy of the free lists in `snap`, then free its current blocks
/// (coalesced). Returns false when the copy cannot be placed (no block big
/// enough, or too few free table entries for the transient double
/// occupancy); otherwise writes the post-move metric to `frag_after`.
[[nodiscard]] bool simulate_compaction(const ResourceManager::Snapshot& snap,
                                       const InstalledProgram& program,
                                       std::uint64_t* frag_after);

}  // namespace p4runpro::ctrl
