#include "control/async_writer.h"

#include <utility>

namespace p4runpro::ctrl {

AsyncWriter::AsyncWriter() : thread_([this] { run(); }) {}

AsyncWriter::~AsyncWriter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  thread_.join();
}

void AsyncWriter::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void AsyncWriter::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !running_job_; });
}

std::size_t AsyncWriter::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + (running_job_ ? 1u : 0u);
}

void AsyncWriter::run() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ set and nothing left to drain
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    running_job_ = true;
    lock.unlock();
    job();
    lock.lock();
    running_job_ = false;
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

}  // namespace p4runpro::ctrl
