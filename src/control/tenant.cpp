#include "control/tenant.h"

namespace p4runpro::ctrl {

void TenantRegistry::register_tenant(TenantId tenant, TenantQuota quota) {
  std::lock_guard<std::mutex> lock(mu_);
  quotas_[tenant] = quota;
}

TenantQuota TenantRegistry::quota(TenantId tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = quotas_.find(tenant);
  return it == quotas_.end() ? TenantQuota{} : it->second;
}

TenantUsage TenantRegistry::usage(TenantId tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = usage_.find(tenant);
  return it == usage_.end() ? TenantUsage{} : it->second;
}

double TenantRegistry::weight(TenantId tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = quotas_.find(tenant);
  const double w = it == quotas_.end() ? 1.0 : it->second.weight;
  return w > 0.0 ? w : 1.0;
}

Status TenantRegistry::admit(TenantId tenant, std::uint64_t memory_words,
                             std::uint64_t entries) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantUsage& u = usage_[tenant];
  const auto qit = quotas_.find(tenant);
  if (qit != quotas_.end()) {
    const TenantQuota& q = qit->second;
    const bool over_programs = q.max_programs != 0 && u.programs + 1 > q.max_programs;
    const bool over_memory =
        q.max_memory_words != 0 && u.memory_words + memory_words > q.max_memory_words;
    const bool over_entries =
        q.max_entries != 0 && u.entries + entries > q.max_entries;
    if (over_programs || over_memory || over_entries) {
      ++u.quota_rejected;
      const char* dim = over_programs ? "program count"
                        : over_memory ? "memory words"
                                      : "table entries";
      return Error{"tenant " + std::to_string(tenant) + " quota exceeded (" +
                       dim + ")",
                   "TenantRegistry", ErrorCode::QuotaExceeded};
    }
  }
  ++u.programs;
  u.memory_words += memory_words;
  u.entries += entries;
  ++u.admitted;
  return {};
}

void TenantRegistry::charge(TenantId tenant, std::uint64_t memory_words,
                            std::uint64_t entries) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantUsage& u = usage_[tenant];
  ++u.programs;
  u.memory_words += memory_words;
  u.entries += entries;
}

void TenantRegistry::uncharge_locked(TenantId tenant, std::uint64_t memory_words,
                                     std::uint64_t entries) {
  TenantUsage& u = usage_[tenant];
  u.programs = u.programs > 0 ? u.programs - 1 : 0;
  u.memory_words = u.memory_words >= memory_words ? u.memory_words - memory_words : 0;
  u.entries = u.entries >= entries ? u.entries - entries : 0;
}

void TenantRegistry::refund(TenantId tenant, std::uint64_t memory_words,
                            std::uint64_t entries) {
  std::lock_guard<std::mutex> lock(mu_);
  uncharge_locked(tenant, memory_words, entries);
}

void TenantRegistry::release(TenantId tenant, std::uint64_t memory_words,
                             std::uint64_t entries) {
  std::lock_guard<std::mutex> lock(mu_);
  uncharge_locked(tenant, memory_words, entries);
}

}  // namespace p4runpro::ctrl
