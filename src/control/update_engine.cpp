#include "control/update_engine.h"

#include <cassert>
#include <cstddef>

#include "obs/telemetry.h"

namespace p4runpro::ctrl {

namespace {

/// Batch label an op is charged under, or nullptr for memory ops (carry-over
/// writes are CPU-side copies; resets have their own block-API cost model).
[[nodiscard]] const char* charge_label(dp::WriteOp::Kind kind) {
  switch (kind) {
    case dp::WriteOp::Kind::AddRecirc:
      return "add.recirc";
    case dp::WriteOp::Kind::AddRpbEntry:
      return "add.rpb";
    case dp::WriteOp::Kind::AddFilters:
      return "add.filters";
    case dp::WriteOp::Kind::DelFilters:
      return "del.filters";
    case dp::WriteOp::Kind::DelRpbEntry:
      return "del.rpb";
    case dp::WriteOp::Kind::DelRecirc:
      return "del.recirc";
    default:
      return nullptr;
  }
}

[[nodiscard]] Error channel_fault() {
  return Error{"injected control-channel fault", "bfrt", ErrorCode::ChannelError};
}

}  // namespace

void UpdateEngine::charge_entries(std::size_t count, const char* what) {
  auto batch_span = obs::span(telemetry_, "bfrt.batch", "bfrt");
  batch_span.arg("what", what);
  batch_span.arg("entries", static_cast<std::uint64_t>(count));
  if (hop_label_ >= 0) {
    batch_span.arg("hop", static_cast<std::uint64_t>(hop_label_));
  }
  clock_.advance_us(cost_.per_batch_overhead_us +
                    cost_.per_entry_write_us * static_cast<double>(count));
  if (telemetry_ != nullptr) {
    auto& m = telemetry_->metrics;
    m.counter("ctrl.bfrt.batches").inc();
    m.counter("ctrl.bfrt.entry_writes").inc(count);
    const auto bounds = obs::Histogram::count_bounds();
    m.histogram("ctrl.bfrt.batch_entries", bounds)
        .observe(static_cast<double>(count));
  }
}

void UpdateEngine::unwind(std::vector<JournalEntry>& journal) {
  for (auto it = journal.rbegin(); it != journal.rend(); ++it) {
    dataplane_.undo(it->inverse);
  }
  journal.clear();
}

Result<UpdateEngine::AppliedEntries> UpdateEngine::execute_install(
    const dp::WriteBatch& batch) {
  AppliedEntries out;
  std::vector<JournalEntry> journal;
  journal.reserve(batch.ops.size());

  // Consecutive ops of one kind form a single bfrt batch; the charge is
  // flushed at every kind boundary so per-batch overheads match the channel
  // model (one sync per batch, one write per entry).
  dp::WriteOp::Kind group_kind = dp::WriteOp::Kind::AddRecirc;
  bool group_open = false;
  std::size_t group_count = 0;
  auto flush = [&] {
    if (group_open) charge_entries(group_count, charge_label(group_kind));
    group_open = false;
    group_count = 0;
  };
  auto fail = [&](Error err) -> Error {
    unwind(journal);
    return err;
  };

  for (std::size_t i = 0; i < batch.ops.size(); ++i) {
    const dp::WriteOp& op = batch.ops[i];
    const bool charged = charge_label(op.kind) != nullptr;
    if (group_open && (!charged || op.kind != group_kind)) flush();

    if (inject_fault()) return fail(channel_fault());
    auto applied = dataplane_.apply(op);
    if (!applied.ok()) return fail(applied.error());
    dp::WriteOp inverse = std::move(applied).take();

    switch (op.kind) {
      case dp::WriteOp::Kind::AddRecirc:
        out.recirc_handles = inverse.recirc_handles;
        group_count += inverse.recirc_handles.size();
        break;
      case dp::WriteOp::Kind::AddRpbEntry:
        out.rpb_handles.emplace_back(op.entry.rpb, inverse.rpb_handle);
        ++group_count;
        break;
      case dp::WriteOp::Kind::AddFilters:
        out.filter_handles = inverse.filter_handles;
        group_count += inverse.filter_handles.size();
        break;
      case dp::WriteOp::Kind::WriteMemRange:
        break;  // relink carry-over: uncharged CPU-side prefill
      default:
        return fail(Error{"unsupported op kind in install batch", "UpdateEngine",
                          ErrorCode::InvalidArgument});
    }
    if (charged) {
      group_kind = op.kind;
      group_open = true;
    }
    journal.push_back(JournalEntry{i, std::move(inverse)});
    observe_step();
  }
  flush();
  // Forward path completed: the pipeline's table state now belongs to the
  // active control operation. (Rollbacks do NOT stamp — the reverted state
  // still belongs to whichever earlier operation installed it.)
  dataplane_.pipeline().note_table_update(
      telemetry_ != nullptr ? telemetry_->active_trace.trace_id : 0);
  return out;
}

dp::WriteOp UpdateEngine::apply_mem_reset(const dp::WriteOp& op) {
  auto reset_span = obs::span(telemetry_, "bfrt.mem_reset", "bfrt");
  reset_span.arg("vmem", op.vmem);
  reset_span.arg("buckets", static_cast<std::uint64_t>(op.mem_size));
  const MemBlock block{op.mem_base, op.mem_size};
  resources_.lock_memory(op.mem_rpb, block);
  auto applied = dataplane_.apply(op);  // captures the words -> RestoreMemRange
  clock_.advance_us(cost_.memory_reset_us_per_kb *
                    static_cast<double>(op.mem_size) * 4.0 / 1024.0);
  resources_.unlock_memory(op.mem_rpb, block);
  if (telemetry_ != nullptr) {
    telemetry_->metrics.counter("ctrl.bfrt.mem_resets").inc();
  }
  return std::move(applied).take();  // throws if the dataplane rejected the range
}

Status UpdateEngine::remove(InstalledProgram& program) {
  if (telemetry_ != nullptr) {
    // The first delete step (filters) atomically stops the program from
    // claiming packets, so the revoke is effective from here on.
    telemetry_->monitor.program_revoked(program.id);
  }
  dp::WriteBatch batch;
  rp::stage_remove(program.plan, program.filter_handles, program.rpb_handles,
                   program.recirc_handles, program.placements, batch);

  std::vector<JournalEntry> journal;
  journal.reserve(batch.ops.size());

  dp::WriteOp::Kind group_kind = dp::WriteOp::Kind::DelFilters;
  bool group_open = false;
  std::size_t group_count = 0;
  auto flush = [&] {
    if (group_open) charge_entries(group_count, charge_label(group_kind));
    group_open = false;
    group_count = 0;
  };
  auto fail = [&](Error err) -> Error {
    rollback_remove(batch, journal, program);
    // The program is back in service with fresh handles: re-announce it so
    // the monitor's installed set matches reality.
    announce_deploy(program);
    return err;
  };

  for (std::size_t i = 0; i < batch.ops.size(); ++i) {
    const dp::WriteOp& op = batch.ops[i];
    if (op.kind == dp::WriteOp::Kind::ResetMemRange) {
      flush();
      if (inject_fault()) return fail(channel_fault());
      journal.push_back(JournalEntry{i, apply_mem_reset(op)});
      observe_step();
      continue;
    }
    if (group_open && op.kind != group_kind) flush();
    if (inject_fault()) return fail(channel_fault());
    auto applied = dataplane_.apply(op);
    if (!applied.ok()) return fail(applied.error());
    switch (op.kind) {
      case dp::WriteOp::Kind::DelFilters:
        group_count += op.filter_handles.size();
        break;
      case dp::WriteOp::Kind::DelRpbEntry:
        ++group_count;
        break;
      case dp::WriteOp::Kind::DelRecirc:
        group_count += op.recirc_handles.size();
        break;
      default:
        return fail(Error{"unsupported op kind in remove batch", "UpdateEngine",
                          ErrorCode::InvalidArgument});
    }
    group_kind = op.kind;
    group_open = true;
    journal.push_back(JournalEntry{i, std::move(applied).take()});
    observe_step();
  }
  flush();

  program.filter_handles.clear();
  program.rpb_handles.clear();
  program.recirc_handles.clear();
  program.placements.clear();
  dataplane_.pipeline().note_table_update(
      telemetry_ != nullptr ? telemetry_->active_trace.trace_id : 0);
  return {};
}

void UpdateEngine::rollback_remove(const dp::WriteBatch& batch,
                                   std::vector<JournalEntry>& journal,
                                   InstalledProgram& program) {
  for (auto it = journal.rbegin(); it != journal.rend(); ++it) {
    const dp::WriteOp& original = batch.ops[it->batch_index];
    if (original.kind == dp::WriteOp::Kind::ResetMemRange) {
      // The block was freed right after the reset; take it back out of the
      // free list *before* restoring its bytes so neither occupancy nor
      // contents can diverge from the pre-transaction state.
      const Status reclaimed = resources_.reclaim_block(
          original.mem_rpb, MemBlock{original.mem_base, original.mem_size});
      assert(reclaimed.ok() && "journal block vanished from the free list");
      (void)reclaimed;
      dataplane_.undo(it->inverse);
      continue;
    }
    // Re-adding yields fresh handles; patch them back into the program so a
    // later revoke can find its entries. stage_remove's batch layout is
    // [DelFilters][DelRpbEntry x N (plan order)][DelRecirc][resets...], so
    // batch_index - 1 is the plan index of an RPB entry.
    dp::WriteOp redo = dataplane_.undo(it->inverse);
    switch (original.kind) {
      case dp::WriteOp::Kind::DelFilters:
        program.filter_handles = std::move(redo.filter_handles);
        break;
      case dp::WriteOp::Kind::DelRpbEntry:
        program.rpb_handles[it->batch_index - 1] = {original.entry.rpb,
                                                    redo.rpb_handle};
        break;
      case dp::WriteOp::Kind::DelRecirc:
        program.recirc_handles = std::move(redo.recirc_handles);
        break;
      default:
        break;
    }
  }
  journal.clear();
}

void UpdateEngine::announce_deploy(const InstalledProgram& program) {
  if (telemetry_ == nullptr) return;
  telemetry_->monitor.program_deployed(
      program.id, program.name,
      program.filter_handles.size() + program.rpb_handles.size() +
          program.recirc_handles.size());
}

}  // namespace p4runpro::ctrl
