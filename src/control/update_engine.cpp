#include "control/update_engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>

#include "obs/telemetry.h"

namespace p4runpro::ctrl {

namespace {

/// Batch label an op is charged under, or nullptr for memory ops (carry-over
/// writes are CPU-side copies; resets have their own block-API cost model).
[[nodiscard]] const char* charge_label(dp::WriteOp::Kind kind) {
  switch (kind) {
    case dp::WriteOp::Kind::AddRecirc:
      return "add.recirc";
    case dp::WriteOp::Kind::AddRpbEntry:
      return "add.rpb";
    case dp::WriteOp::Kind::AddFilters:
      return "add.filters";
    case dp::WriteOp::Kind::DelFilters:
      return "del.filters";
    case dp::WriteOp::Kind::DelRpbEntry:
      return "del.rpb";
    case dp::WriteOp::Kind::DelRecirc:
      return "del.recirc";
    default:
      return nullptr;
  }
}

[[nodiscard]] Error channel_fault() {
  return Error{"injected control-channel fault", "bfrt", ErrorCode::ChannelError};
}

/// Channel time of `us` microseconds, rounded exactly like
/// SimClock::advance_us so async charge sums are byte-identical to the
/// serial clock advances they replace.
[[nodiscard]] SimClock::Nanos channel_ns(double us) {
  return static_cast<SimClock::Nanos>(std::llround(us * 1000.0));
}

}  // namespace

void UpdateEngine::charge_batch(std::size_t count, const char* what,
                                ChannelCursor* cursor) {
  if (cursor == nullptr) {
    auto batch_span = obs::span(telemetry_, "bfrt.batch", "bfrt");
    batch_span.arg("what", what);
    batch_span.arg("entries", static_cast<std::uint64_t>(count));
    if (hop_label_ >= 0) {
      batch_span.arg("hop", static_cast<std::uint64_t>(hop_label_));
    }
    clock_.advance_us(cost_.per_batch_overhead_us +
                      cost_.per_entry_write_us * static_cast<double>(count));
    if (telemetry_ != nullptr) {
      auto& m = telemetry_->metrics;
      m.counter("ctrl.bfrt.batches").inc();
      m.counter("ctrl.bfrt.entry_writes").inc(count);
      if (maintenance_) m.counter("ctrl.bfrt.maintenance_batches").inc();
      const auto bounds = obs::Histogram::count_bounds();
      m.histogram("ctrl.bfrt.batch_entries", bounds)
          .observe(static_cast<double>(count));
    }
    return;
  }
  // Writer thread: record the charge against the channel cursor. A batch
  // directly behind a same-kind batch (no idle gap, no other kind between)
  // coalesces into the predecessor's submission and skips the per-batch
  // sync overhead.
  ChannelCharge charge;
  charge.kind = ChannelCharge::Kind::Batch;
  charge.label = what;
  charge.entries = count;
  charge.coalesced = !cursor->last_label.empty() && cursor->last_label == what;
  const double us = (charge.coalesced ? 0.0 : cost_.per_batch_overhead_us) +
                    cost_.per_entry_write_us * static_cast<double>(count);
  charge.start_ns = cursor->now;
  cursor->now += channel_ns(us);
  charge.end_ns = cursor->now;
  cursor->last_label = what;
  cursor->charges->push_back(std::move(charge));
}

void UpdateEngine::unwind(std::vector<JournalEntry>& journal) {
  for (auto it = journal.rbegin(); it != journal.rend(); ++it) {
    dataplane_.undo(it->inverse);
  }
  journal.clear();
}

Result<UpdateEngine::AppliedEntries> UpdateEngine::run_install(
    const dp::WriteBatch& batch, ChannelCursor* cursor) {
  AppliedEntries out;
  std::vector<JournalEntry> journal;
  journal.reserve(batch.ops.size());

  // Consecutive ops of one kind form a single bfrt batch; the charge is
  // flushed at every kind boundary so per-batch overheads match the channel
  // model (one sync per batch, one write per entry).
  dp::WriteOp::Kind group_kind = dp::WriteOp::Kind::AddRecirc;
  bool group_open = false;
  std::size_t group_count = 0;
  auto flush = [&] {
    if (group_open) charge_batch(group_count, charge_label(group_kind), cursor);
    group_open = false;
    group_count = 0;
  };
  auto fail = [&](Error err) -> Error {
    unwind(journal);
    return err;
  };

  for (std::size_t i = 0; i < batch.ops.size(); ++i) {
    const dp::WriteOp& op = batch.ops[i];
    const bool charged = charge_label(op.kind) != nullptr;
    if (group_open && (!charged || op.kind != group_kind)) flush();

    if (inject_fault()) return fail(channel_fault());
    auto applied = dataplane_.apply(op);
    if (!applied.ok()) return fail(applied.error());
    dp::WriteOp inverse = std::move(applied).take();

    switch (op.kind) {
      case dp::WriteOp::Kind::AddRecirc:
        out.recirc_handles = inverse.recirc_handles;
        group_count += inverse.recirc_handles.size();
        break;
      case dp::WriteOp::Kind::AddRpbEntry:
        out.rpb_handles.emplace_back(op.entry.rpb, inverse.rpb_handle);
        ++group_count;
        break;
      case dp::WriteOp::Kind::AddFilters:
        out.filter_handles = inverse.filter_handles;
        group_count += inverse.filter_handles.size();
        break;
      case dp::WriteOp::Kind::WriteMemRange:
        break;  // relink carry-over: uncharged CPU-side prefill
      default:
        return fail(Error{"unsupported op kind in install batch", "UpdateEngine",
                          ErrorCode::InvalidArgument});
    }
    if (charged) {
      group_kind = op.kind;
      group_open = true;
    }
    journal.push_back(JournalEntry{i, std::move(inverse)});
    observe_step();
  }
  flush();
  return out;
}

Result<UpdateEngine::AppliedEntries> UpdateEngine::execute_install(
    const dp::WriteBatch& batch) {
  if (writer_) {
    // Auto-route: single-call flows stay correct in async mode (the caller
    // already holds the session lock, so blocking inline is safe).
    PendingWrite pending = submit_install(batch);
    return finish_install(pending);
  }
  auto out = run_install(batch, nullptr);
  if (out.ok()) {
    // Forward path completed: the pipeline's table state now belongs to the
    // active control operation. (Rollbacks do NOT stamp — the reverted state
    // still belongs to whichever earlier operation installed it.)
    dataplane_.note_table_update(
        telemetry_ != nullptr ? telemetry_->active_trace.trace_id : 0);
  }
  return out;
}

dp::WriteOp UpdateEngine::apply_mem_reset(const dp::WriteOp& op,
                                          ChannelCursor* cursor,
                                          WriteOutcome* outcome) {
  const double us = cost_.memory_reset_us_per_kb *
                    static_cast<double>(op.mem_size) * 4.0 / 1024.0;
  if (cursor == nullptr) {
    auto reset_span = obs::span(telemetry_, "bfrt.mem_reset", "bfrt");
    reset_span.arg("vmem", op.vmem);
    reset_span.arg("buckets", static_cast<std::uint64_t>(op.mem_size));
    const MemBlock block{op.mem_base, op.mem_size};
    resources_.lock_memory(op.mem_rpb, block);
    auto applied = dataplane_.apply(op);  // captures the words -> RestoreMemRange
    clock_.advance_us(us);
    resources_.unlock_memory(op.mem_rpb, block);
    if (telemetry_ != nullptr) {
      telemetry_->metrics.counter("ctrl.bfrt.mem_resets").inc();
    }
    return std::move(applied).take();  // throws if the dataplane rejected the range
  }
  // Writer thread: zero the range and record the charge; the block free is
  // deferred to finish_remove (the writer never touches the resource
  // manager, so a fault-unwind finds the block still reserved).
  auto applied = dataplane_.apply(op);
  ChannelCharge charge;
  charge.kind = ChannelCharge::Kind::MemReset;
  charge.label = op.vmem;
  charge.entries = op.mem_size;
  charge.start_ns = cursor->now;
  cursor->now += channel_ns(us);
  charge.end_ns = cursor->now;
  cursor->last_label.clear();  // a reset breaks batch adjacency on the channel
  cursor->charges->push_back(std::move(charge));
  outcome->deferred_frees.emplace_back(op.mem_rpb,
                                       MemBlock{op.mem_base, op.mem_size});
  return std::move(applied).take();
}

Status UpdateEngine::run_remove(const dp::WriteBatch& batch,
                                InstalledProgram& program,
                                ChannelCursor* cursor, WriteOutcome* outcome) {
  std::vector<JournalEntry> journal;
  journal.reserve(batch.ops.size());

  dp::WriteOp::Kind group_kind = dp::WriteOp::Kind::DelFilters;
  bool group_open = false;
  std::size_t group_count = 0;
  auto flush = [&] {
    if (group_open) charge_batch(group_count, charge_label(group_kind), cursor);
    group_open = false;
    group_count = 0;
  };
  auto fail = [&](Error err) -> Error {
    rollback_remove(batch, journal, program, /*deferred_frees=*/cursor != nullptr);
    if (outcome != nullptr) {
      // The reset blocks were restored in place, never freed — nothing for
      // finish_remove to release.
      outcome->deferred_frees.clear();
    }
    return err;
  };

  for (std::size_t i = 0; i < batch.ops.size(); ++i) {
    const dp::WriteOp& op = batch.ops[i];
    if (op.kind == dp::WriteOp::Kind::ResetMemRange) {
      flush();
      if (inject_fault()) return fail(channel_fault());
      journal.push_back(JournalEntry{i, apply_mem_reset(op, cursor, outcome)});
      observe_step();
      continue;
    }
    if (group_open && op.kind != group_kind) flush();
    if (inject_fault()) return fail(channel_fault());
    auto applied = dataplane_.apply(op);
    if (!applied.ok()) return fail(applied.error());
    switch (op.kind) {
      case dp::WriteOp::Kind::DelFilters:
        group_count += op.filter_handles.size();
        break;
      case dp::WriteOp::Kind::DelRpbEntry:
        ++group_count;
        break;
      case dp::WriteOp::Kind::DelRecirc:
        group_count += op.recirc_handles.size();
        break;
      default:
        return fail(Error{"unsupported op kind in remove batch", "UpdateEngine",
                          ErrorCode::InvalidArgument});
    }
    group_kind = op.kind;
    group_open = true;
    journal.push_back(JournalEntry{i, std::move(applied).take()});
    observe_step();
  }
  flush();

  program.filter_handles.clear();
  program.rpb_handles.clear();
  program.recirc_handles.clear();
  program.placements.clear();
  return {};
}

Status UpdateEngine::remove(InstalledProgram& program) {
  if (writer_) {
    PendingWrite pending = submit_remove(program);
    return finish_remove(pending, program);
  }
  if (telemetry_ != nullptr) {
    // The first delete step (filters) atomically stops the program from
    // claiming packets, so the revoke is effective from here on.
    telemetry_->monitor.program_revoked(program.id);
  }
  dp::WriteBatch batch;
  rp::stage_remove(program.plan, program.filter_handles, program.rpb_handles,
                   program.recirc_handles, program.placements, batch);
  Status removed = run_remove(batch, program, nullptr, nullptr);
  if (!removed.ok()) {
    // The program is back in service with fresh handles: re-announce it so
    // the monitor's installed set matches reality.
    announce_deploy(program);
    return removed;
  }
  dataplane_.note_table_update(
      telemetry_ != nullptr ? telemetry_->active_trace.trace_id : 0);
  return removed;
}

void UpdateEngine::rollback_remove(const dp::WriteBatch& batch,
                                   std::vector<JournalEntry>& journal,
                                   InstalledProgram& program,
                                   bool deferred_frees) {
  for (auto it = journal.rbegin(); it != journal.rend(); ++it) {
    const dp::WriteOp& original = batch.ops[it->batch_index];
    if (original.kind == dp::WriteOp::Kind::ResetMemRange) {
      if (!deferred_frees) {
        // The block was freed right after the reset; take it back out of the
        // free list *before* restoring its bytes so neither occupancy nor
        // contents can diverge from the pre-transaction state.
        const Status reclaimed = resources_.reclaim_block(
            original.mem_rpb, MemBlock{original.mem_base, original.mem_size});
        assert(reclaimed.ok() && "journal block vanished from the free list");
        (void)reclaimed;
      }
      // Async path: the free was deferred to finish_remove and never
      // happened, so the block is still reserved — only the bytes need
      // restoring.
      dataplane_.undo(it->inverse);
      continue;
    }
    // Re-adding yields fresh handles; patch them back into the program so a
    // later revoke can find its entries. stage_remove's batch layout is
    // [DelFilters][DelRpbEntry x N (plan order)][DelRecirc][resets...], so
    // batch_index - 1 is the plan index of an RPB entry.
    dp::WriteOp redo = dataplane_.undo(it->inverse);
    switch (original.kind) {
      case dp::WriteOp::Kind::DelFilters:
        program.filter_handles = std::move(redo.filter_handles);
        break;
      case dp::WriteOp::Kind::DelRpbEntry:
        program.rpb_handles[it->batch_index - 1] = {original.entry.rpb,
                                                    redo.rpb_handle};
        break;
      case dp::WriteOp::Kind::DelRecirc:
        program.recirc_handles = std::move(redo.recirc_handles);
        break;
      default:
        break;
    }
  }
  journal.clear();
}

// --- asynchronous channel --------------------------------------------------

void UpdateEngine::set_async(bool enabled) {
  if (enabled == async()) return;
  if (enabled) {
    writer_ = std::make_unique<AsyncWriter>();
    channel_cursor_ns_ = clock_.now_ns();
    channel_last_label_.clear();
  } else {
    writer_->wait_idle();
    writer_.reset();
    if (telemetry_ != nullptr) {
      telemetry_->metrics.gauge("ctrl.channel.queue_depth").set(0.0);
    }
  }
}

UpdateEngine::ChannelCursor UpdateEngine::begin_job(SimClock::Nanos submitted_ns,
                                                    WriteOutcome* outcome) {
  ChannelCursor cursor;
  cursor.now = std::max(submitted_ns, channel_cursor_ns_);
  if (cursor.now == channel_cursor_ns_) {
    // Back-to-back on the channel: the predecessor's trailing batch can
    // still absorb a same-kind follow-up.
    cursor.last_label = channel_last_label_;
  }
  // (Idle gap: the previous batch's sync completed long ago, nothing to
  // coalesce with — last_label stays empty.)
  cursor.charges = &outcome->charges;
  return cursor;
}

void UpdateEngine::end_job(const ChannelCursor& cursor) {
  channel_cursor_ns_ = cursor.now;
  channel_last_label_ = cursor.last_label;
}

UpdateEngine::PendingWrite UpdateEngine::submit_install(
    const dp::WriteBatch& batch) {
  assert(writer_ && "submit_install requires async mode");
  PendingWrite pending;
  pending.outcome = std::make_shared<WriteOutcome>();
  pending.submitted_ns = clock_.now_ns();
  pending.ops = batch.ops.size();
  pending.outcome->trace =
      telemetry_ != nullptr ? telemetry_->active_trace.trace_id : 0;
  pending.outcome->maintenance = maintenance_;

  auto promise = std::make_shared<std::promise<void>>();
  pending.done = promise->get_future();
  std::shared_ptr<WriteOutcome> outcome = pending.outcome;
  const dp::WriteBatch* batch_ptr = &batch;  // caller keeps it alive to finish
  const SimClock::Nanos submitted = pending.submitted_ns;
  writer_->enqueue([this, outcome, batch_ptr, submitted, promise] {
    ChannelCursor cursor = begin_job(submitted, outcome.get());
    outcome->applied = run_install(*batch_ptr, &cursor);
    // Publish on the writer thread: it is the only table mutator in async
    // mode, so the snapshot deep-copy cannot race a later queued job (the
    // session thread in finish_install may run concurrently with one).
    // Rollback (the !ok branch) publishes nothing — shard traffic never
    // sees the faulted intermediate state.
    if (outcome->applied->ok()) dataplane_.note_table_update(outcome->trace);
    end_job(cursor);
    outcome->completion_ns = cursor.now;
    promise->set_value();
  });
  update_queue_gauge();
  return pending;
}

Result<UpdateEngine::AppliedEntries> UpdateEngine::finish_install(
    PendingWrite& pending) {
  pending.done.wait();  // happens-before: the outcome is ours now
  WriteOutcome& outcome = *pending.outcome;
  clock_.advance_to_ns(outcome.completion_ns);
  emit_charges(outcome);
  update_queue_gauge();
  assert(outcome.applied.has_value());
  // Table stamp + snapshot publication already happened on the writer
  // thread, immediately after the run core (see submit_install).
  return std::move(*outcome.applied);
}

UpdateEngine::PendingWrite UpdateEngine::submit_remove(
    InstalledProgram& program) {
  assert(writer_ && "submit_remove requires async mode");
  if (telemetry_ != nullptr) {
    // The program is logically retired at submission: its first delete step
    // (filters) is ordered on the channel before anything submitted later.
    telemetry_->monitor.program_revoked(program.id);
  }
  PendingWrite pending;
  pending.outcome = std::make_shared<WriteOutcome>();
  pending.outcome->batch = std::make_shared<dp::WriteBatch>();
  rp::stage_remove(program.plan, program.filter_handles, program.rpb_handles,
                   program.recirc_handles, program.placements,
                   *pending.outcome->batch);
  pending.submitted_ns = clock_.now_ns();
  pending.ops = pending.outcome->batch->ops.size();
  pending.outcome->trace =
      telemetry_ != nullptr ? telemetry_->active_trace.trace_id : 0;
  pending.outcome->maintenance = maintenance_;

  auto promise = std::make_shared<std::promise<void>>();
  pending.done = promise->get_future();
  std::shared_ptr<WriteOutcome> outcome = pending.outcome;
  InstalledProgram* prog = &program;  // caller guards it (busy set) to finish
  const SimClock::Nanos submitted = pending.submitted_ns;
  writer_->enqueue([this, outcome, prog, submitted, promise] {
    ChannelCursor cursor = begin_job(submitted, outcome.get());
    outcome->removed = run_remove(*outcome->batch, *prog, &cursor, outcome.get());
    // Same single-mutator rule as submit_install: publish here, not in
    // finish_remove, and never after a fault-unwind.
    if (outcome->removed->ok()) dataplane_.note_table_update(outcome->trace);
    end_job(cursor);
    outcome->completion_ns = cursor.now;
    promise->set_value();
  });
  update_queue_gauge();
  return pending;
}

Status UpdateEngine::finish_remove(PendingWrite& pending,
                                   InstalledProgram& program) {
  pending.done.wait();
  WriteOutcome& outcome = *pending.outcome;
  clock_.advance_to_ns(outcome.completion_ns);
  emit_charges(outcome);
  update_queue_gauge();
  assert(outcome.removed.has_value());
  if (outcome.removed->ok()) {
    for (const auto& [rpb, block] : outcome.deferred_frees) {
      resources_.unlock_memory(rpb, block);
    }
    // Table stamp + snapshot publication already happened on the writer
    // thread, immediately after the run core (see submit_remove).
  } else {
    // Fault-unwind restored the program with fresh handles on the writer
    // thread; re-announce it so the monitor's installed set matches reality.
    announce_deploy(program);
  }
  return *outcome.removed;
}

void UpdateEngine::emit_charges(const WriteOutcome& outcome) {
  if (telemetry_ == nullptr) return;
  auto& m = telemetry_->metrics;
  for (const ChannelCharge& charge : outcome.charges) {
    std::vector<std::pair<std::string, std::string>> args;
    if (charge.kind == ChannelCharge::Kind::Batch) {
      args.emplace_back("what", charge.label);
      args.emplace_back("entries", std::to_string(charge.entries));
      if (hop_label_ >= 0) args.emplace_back("hop", std::to_string(hop_label_));
      if (charge.coalesced) args.emplace_back("coalesced", "1");
      telemetry_->tracer.record_span("bfrt.batch", "bfrt", charge.start_ns,
                                     charge.end_ns, outcome.trace,
                                     std::move(args));
      m.counter("ctrl.bfrt.batches").inc();
      m.counter("ctrl.bfrt.entry_writes").inc(charge.entries);
      if (outcome.maintenance) m.counter("ctrl.bfrt.maintenance_batches").inc();
      const auto bounds = obs::Histogram::count_bounds();
      m.histogram("ctrl.bfrt.batch_entries", bounds)
          .observe(static_cast<double>(charge.entries));
      if (charge.coalesced) m.counter("ctrl.bfrt.coalesced_batches").inc();
    } else {
      args.emplace_back("vmem", charge.label);
      args.emplace_back("buckets", std::to_string(charge.entries));
      telemetry_->tracer.record_span("bfrt.mem_reset", "bfrt", charge.start_ns,
                                     charge.end_ns, outcome.trace,
                                     std::move(args));
      m.counter("ctrl.bfrt.mem_resets").inc();
    }
  }
}

void UpdateEngine::update_queue_gauge() {
  if (telemetry_ == nullptr || writer_ == nullptr) return;
  telemetry_->metrics.gauge("ctrl.channel.queue_depth")
      .set(static_cast<double>(writer_->depth()));
}

void UpdateEngine::announce_deploy(const InstalledProgram& program) {
  if (telemetry_ == nullptr) return;
  telemetry_->monitor.program_deployed(
      program.id, program.name,
      program.filter_handles.size() + program.rpb_handles.size() +
          program.recirc_handles.size());
}

}  // namespace p4runpro::ctrl
