#include "control/update_engine.h"

#include <cassert>

#include "obs/telemetry.h"

namespace p4runpro::ctrl {

void UpdateEngine::charge_entries(std::size_t count, const char* what) {
  auto batch_span = obs::span(telemetry_, "bfrt.batch", "bfrt");
  batch_span.arg("what", what);
  batch_span.arg("entries", static_cast<std::uint64_t>(count));
  clock_.advance_us(cost_.per_batch_overhead_us +
                    cost_.per_entry_write_us * static_cast<double>(count));
  if (telemetry_ != nullptr) {
    auto& m = telemetry_->metrics;
    m.counter("ctrl.bfrt.batches").inc();
    m.counter("ctrl.bfrt.entry_writes").inc(count);
    const auto bounds = obs::Histogram::count_bounds();
    m.histogram("ctrl.bfrt.batch_entries", bounds)
        .observe(static_cast<double>(count));
  }
}

Result<InstalledProgram> UpdateEngine::install(
    const rp::TranslatedProgram& ir, const rp::AllocationResult& alloc,
    rp::EntryPlan plan, std::map<std::string, VmemPlacement> placements,
    const std::string& name) {
  InstalledProgram out;
  out.id = plan.program;
  out.name = name;
  out.ir = ir;
  out.alloc = alloc;
  out.placements = std::move(placements);

  auto rollback = [&] {
    for (const auto& [rpb, handle] : out.rpb_handles) {
      dataplane_.rpb(rpb).table().erase(handle);
    }
    dataplane_.recirc_block().remove(out.recirc_handles);
    dataplane_.init_block().remove(out.filter_handles);
  };

  // Step 1: recirculation entries (invisible without a program id).
  if (inject_fault()) return Error{"injected control-channel fault", "bfrt"};
  auto recirc = dataplane_.recirc_block().install(plan.program, plan.rounds);
  if (!recirc.ok()) return recirc.error();
  out.recirc_handles = std::move(recirc).take();
  charge_entries(out.recirc_handles.size(), "add.recirc");
  observe_step();

  // Step 2: RPB entries, batched per program.
  for (auto& spec : plan.rpb_entries) {
    if (inject_fault()) {
      rollback();
      return Error{"injected control-channel fault", "bfrt"};
    }
    auto handle = dataplane_.rpb(spec.rpb).table().insert(spec.keys, spec.priority,
                                                          spec.action);
    if (!handle.ok()) {
      rollback();
      return handle.error();
    }
    out.rpb_handles.emplace_back(spec.rpb, handle.value());
    observe_step();
  }
  charge_entries(out.rpb_handles.size(), "add.rpb");

  // Step 3: init filters last — this atomically activates the program.
  if (inject_fault()) {
    rollback();
    return Error{"injected control-channel fault", "bfrt"};
  }
  auto filters = dataplane_.init_block().install(plan.program, plan.filters,
                                                 plan.filter_priority);
  if (!filters.ok()) {
    rollback();
    return filters.error();
  }
  out.filter_handles = std::move(filters).take();
  charge_entries(out.filter_handles.size(), "add.filters");
  observe_step();

  out.plan = std::move(plan);
  if (telemetry_ != nullptr) {
    // The program became visible to traffic with the last filter write:
    // announce the deploy to the health monitor (entry count = everything
    // the update wrote, the same figure the dashboard reports).
    telemetry_->monitor.program_deployed(
        out.id, out.name,
        out.filter_handles.size() + out.rpb_handles.size() +
            out.recirc_handles.size());
  }
  return out;
}

void UpdateEngine::remove(InstalledProgram& program) {
  if (telemetry_ != nullptr) {
    // The first delete step (filters) atomically stops the program from
    // claiming packets, so the revoke is effective from here on.
    telemetry_->monitor.program_revoked(program.id);
  }
  // Step 1: delete the init filters first; without a program id every
  // later component of the program stops matching at once.
  dataplane_.init_block().remove(program.filter_handles);
  charge_entries(program.filter_handles.size(), "del.filters");
  program.filter_handles.clear();
  observe_step();

  // Step 2: remove the remaining entries.
  for (const auto& [rpb, handle] : program.rpb_handles) {
    const bool erased = dataplane_.rpb(rpb).table().erase(handle);
    assert(erased);
    (void)erased;
    observe_step();
  }
  charge_entries(program.rpb_handles.size(), "del.rpb");
  program.rpb_handles.clear();
  dataplane_.recirc_block().remove(program.recirc_handles);
  charge_entries(program.recirc_handles.size(), "del.recirc");
  program.recirc_handles.clear();

  // Step 3: lock, reset and release the program's memory (Fig. 6 step 4).
  for (const auto& [vmem, placement] : program.placements) {
    auto reset_span = obs::span(telemetry_, "bfrt.mem_reset", "bfrt");
    reset_span.arg("vmem", vmem);
    reset_span.arg("buckets", static_cast<std::uint64_t>(placement.block.size));
    resources_.lock_memory(placement.rpb, placement.block);
    dataplane_.rpb(placement.rpb).memory().reset_range(placement.block.base,
                                                       placement.block.size);
    clock_.advance_us(cost_.memory_reset_us_per_kb *
                      static_cast<double>(placement.block.size) * 4.0 / 1024.0);
    resources_.unlock_memory(placement.rpb, placement.block);
    if (telemetry_ != nullptr) {
      telemetry_->metrics.counter("ctrl.bfrt.mem_resets").inc();
    }
    observe_step();
  }
  program.placements.clear();
}

}  // namespace p4runpro::ctrl
