// P4runpro control plane controller: the public runtime-programming API.
// Drives the full link pipeline (parse -> check -> translate -> allocate ->
// generate entries -> consistent update) and program lifecycle
// (monitor / revoke), mirroring the prototype's runtime CLI (paper §5).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "compiler/compiler.h"
#include "compiler/solver.h"
#include "control/admission.h"
#include "control/defrag.h"
#include "control/resource_manager.h"
#include "control/tenant.h"
#include "control/update_engine.h"
#include "dataplane/runpro_dataplane.h"

namespace p4runpro::obs {
struct Telemetry;
class ProgramHealthMonitor;
class FlightRecorder;
}  // namespace p4runpro::obs

namespace p4runpro::ctrl {

/// Timing breakdown of one program deployment (§6.2.1: deployment delay =
/// allocation delay + update delay; parsing is negligible). `alloc_ms` is
/// real measured solver time; `parse_ms`/`update_ms` come from the
/// simulated control channel.
struct LinkStats {
  double parse_ms = 0.0;
  double alloc_ms = 0.0;
  double update_ms = 0.0;

  [[nodiscard]] double deploy_ms() const noexcept {
    return parse_ms + alloc_ms + update_ms;
  }
};

struct LinkResult {
  ProgramId id = 0;
  std::string name;
  LinkStats stats;
  /// Causal trace id minted for the link operation (obs::TraceScope); pass
  /// it to ctrl::trace_report to assemble the operation's cross-tier story.
  std::uint64_t trace = 0;
};

/// One control-plane lifecycle event (operator audit log).
struct ControlEvent {
  enum class Kind : std::uint8_t {
    Link, Relink, Revoke, LinkFailed, RevokeFailed
  } kind;
  double t_ms = 0.0;  ///< virtual time
  ProgramId id = 0;
  std::string name;
  std::string detail;  ///< error text (with its [ErrorCode]) for *Failed kinds
};

/// Tuning for link_many's concurrent sessions.
struct ParallelLinkOptions {
  /// A session solves against a resource snapshot off-lock; by commit time
  /// another session may have taken those resources. On such a reservation
  /// conflict the session re-snapshots and re-solves, up to this many extra
  /// attempts, before giving up with the conflict error. This is a hard cap
  /// on the retry spin: every extra attempt bumps "ctrl.link.retries", so an
  /// oversubscribed switch shows up as a counter, not as livelock.
  int max_solve_retries = 3;
};

/// One concurrent link session: a single-program source unit tagged with the
/// tenant whose quota and fair share it runs under (0 = default tenant).
struct SessionSpec {
  std::string source;
  TenantId tenant = 0;
};

class Controller {
 public:
  /// `telemetry` routes all observations (metrics, phase spans) of this
  /// controller, its update engine, resource manager and the dataplane's
  /// pipeline through one bundle; null selects obs::default_telemetry().
  Controller(dp::RunproDataplane& dataplane, SimClock& clock,
             rp::Objective objective = {}, BfrtCostModel cost = {},
             obs::Telemetry* telemetry = nullptr);

  /// Link every program of a source unit to the running data plane.
  /// All-or-nothing: on failure no program of the unit stays linked.
  Result<std::vector<LinkResult>> link(std::string_view source);

  /// Link a unit expected to contain exactly one program.
  Result<LinkResult> link_single(std::string_view source);

  /// Concurrent link sessions: link every source (each a single-program
  /// unit) on `pool` workers. Compile and allocation-solving run in
  /// parallel against resource snapshots; reservation + staged commit are
  /// serialized under the controller's session lock, so deployments stay
  /// all-or-nothing and allocations never overlap. Results are positional
  /// (results[i] belongs to sources[i]); each failure is per-session and
  /// rolls back only its own transaction.
  std::vector<Result<LinkResult>> link_many(const std::vector<std::string>& sources,
                                            common::ThreadPool& pool,
                                            ParallelLinkOptions options = {});
  /// Tenant-attributed variant: every session passes admission (bounded
  /// in-flight reservations, weighted fair queuing, shed past the queue
  /// bound with ErrorCode::AdmissionShed) and its tenant's quota gate
  /// (ErrorCode::QuotaExceeded) before reserving.
  std::vector<Result<LinkResult>> link_many(const std::vector<SessionSpec>& sessions,
                                            common::ThreadPool& pool,
                                            ParallelLinkOptions options = {});
  /// One admission-gated link session (the unit link_many maps over a
  /// pool). Safe to call concurrently from any thread — this is the
  /// entry point for callers that drive their own session threads (e.g.
  /// bench/tenant_churn measuring per-session latency).
  Result<LinkResult> link_session(const SessionSpec& session,
                                  ParallelLinkOptions options = {});

  /// Incremental update (paper §7): atomically replace a running program
  /// with a new version compiled from `source`, preserving the contents of
  /// virtual memories present in both versions. The new version is fully
  /// installed before the old one is disabled, so traffic always sees
  /// exactly one complete version.
  Result<LinkResult> relink(ProgramId old_id, std::string_view source);

  /// Consistently remove a running program and release its resources. A
  /// control-channel fault mid-removal rolls the removal back: the program
  /// keeps running (with fresh entry handles) and the error is returned.
  Status revoke(ProgramId id);
  /// Revoke by program name (names are unique among running programs).
  Status revoke_by_name(const std::string& name);

  /// Toggle the asynchronous control channel: a per-engine writer thread
  /// drains committed op-logs through the simulated bfrt channel so commit
  /// paths can release the session lock (or pipeline hops) while writes are
  /// in flight (docs/ARCHITECTURE.md "Async control channel"). Off by
  /// default; toggling drains any in-flight writes first. Call with no
  /// deployment in progress.
  void set_async_writes(bool enabled);
  [[nodiscard]] bool async_writes() const;

  // --- monitoring --------------------------------------------------------
  // Read-side queries take the session lock and quiesce the async channel
  // (writer drained) before reading, so they are safe to call while
  // sessions run on other threads. The pointer-returning queries release
  // the lock before returning: the pointee is stable (map nodes never
  // move) but its *contents* are only guaranteed until the next mutating
  // call on this controller — hold results across sessions by value, not by
  // pointer.
  [[nodiscard]] const InstalledProgram* program(ProgramId id) const;
  [[nodiscard]] const InstalledProgram* program_by_name(const std::string& name) const;
  [[nodiscard]] std::vector<ProgramId> running_programs() const;
  [[nodiscard]] std::size_t program_count() const;

  /// Control-plane memory access (virtual addresses).
  [[nodiscard]] Result<Word> read_memory(ProgramId id, const std::string& vmem,
                                         MemAddr vaddr) const;
  /// Drain the packets REPORTed to the switch CPU since the last drain
  /// (e.g. heavy-hitter notifications).
  [[nodiscard]] std::vector<rmt::Packet> drain_reports();
  /// Packets the program's filter has claimed since it was linked.
  [[nodiscard]] std::uint64_t program_packets(ProgramId id) const;
  /// Dump a whole virtual memory block (the resource manager's
  /// memory-monitoring path, §3.1).
  [[nodiscard]] Result<std::vector<Word>> dump_memory(ProgramId id,
                                                      const std::string& vmem) const;
  /// The hash algorithm whose (masked) output indexes `vmem` — i.e. the
  /// hash unit of the stage that executes the program's HASH_*_MEM on that
  /// memory. Lets the control plane compute bucket indices when populating
  /// or monitoring sketch memories.
  [[nodiscard]] Result<rmt::HashAlgo> hash_algo_for(ProgramId id,
                                                    const std::string& vmem) const;
  Status write_memory(ProgramId id, const std::string& vmem, MemAddr vaddr, Word value);

  /// Lifecycle audit log (most recent last; bounded to the last 1,024
  /// events). Returned by value: a snapshot taken under the session lock,
  /// safe to iterate while sessions keep appending.
  [[nodiscard]] std::deque<ControlEvent> events() const;

  [[nodiscard]] ResourceManager& resources() noexcept { return resources_; }
  [[nodiscard]] UpdateEngine& updates() noexcept { return updates_; }
  [[nodiscard]] const ResourceManager& resources() const noexcept { return resources_; }
  [[nodiscard]] rp::Objective objective() const noexcept { return objective_; }
  void set_objective(rp::Objective objective) noexcept { objective_ = objective; }

  /// The telemetry bundle this controller reports into.
  [[nodiscard]] obs::Telemetry& telemetry() noexcept { return *telemetry_; }
  [[nodiscard]] const obs::Telemetry& telemetry() const noexcept { return *telemetry_; }

  /// Shortcuts into the bundle's data-plane health instrumentation: the
  /// per-program monitor attached to the pipeline as packet observer, and
  /// the flight recorder it freezes when an alert trips.
  [[nodiscard]] obs::ProgramHealthMonitor& monitor() noexcept;
  [[nodiscard]] const obs::ProgramHealthMonitor& monitor() const noexcept;
  [[nodiscard]] obs::FlightRecorder& flight_recorder() noexcept;

  /// Charge a fixed virtual-time cost per allocation instead of the solver's
  /// measured wall time. Makes full link runs deterministic in virtual time
  /// (reproducible trace exports); reset with std::nullopt.
  void set_fixed_alloc_charge_ms(std::optional<double> ms) noexcept {
    fixed_alloc_charge_ms_ = ms;
  }

  // --- multi-tenant control plane -----------------------------------------
  // (docs/ARCHITECTURE.md "Multi-tenant control plane")

  /// Per-tenant quotas and usage. Internally synchronized; register quotas
  /// before launching the tenant's sessions.
  [[nodiscard]] TenantRegistry& tenants() noexcept { return tenants_; }
  [[nodiscard]] const TenantRegistry& tenants() const noexcept { return tenants_; }

  /// Admission bounds for link sessions (in-flight cap + queue bound).
  /// Reconfigure only with no session in flight.
  void set_admission_config(AdmissionConfig config) {
    admission_.set_config(config);
  }
  [[nodiscard]] const AdmissionController& admission() const noexcept {
    return admission_;
  }

  /// Run one defragmentation pass: greedily migrate installed programs
  /// (best simulated fragmentation gain first) through relink transactions
  /// until no move gains at least `min_gain_words` or `max_moves` is
  /// reached. Quiesces the async channel first; commits route through the
  /// writer (inline) in async mode. The fragmentation metric is
  /// non-increasing across every executed move by construction.
  Result<DefragReport> defragment(DefragOptions options = {});

  /// Auto-defrag: when a session's reservation fails with AllocFailed, run
  /// a bounded defrag pass under the lock and retry the reservation (still
  /// within the session's retry cap). Off by default.
  void set_auto_defrag(bool enabled);
  [[nodiscard]] bool auto_defrag() const;

  ~Controller();

 private:
  // Locking discipline (docs/ARCHITECTURE.md "Async control channel"): all
  // mutations of controller/resource/clock/telemetry state happen under
  // mu_. Public mutators take the lock and delegate to the *_locked
  // internals; link_many workers do their pure compute (compile, solve)
  // off-lock against snapshots and re-enter mu_ for reserve+commit. Const
  // queries take mu_ and quiesce the async channel before reading (use the
  // *_unlocked internals from code already holding mu_ — the public
  // versions would self-deadlock). Dataplane writes are serialized by the
  // engine: on the caller's thread under mu_ in serial mode, on the single
  // writer thread in async mode (the writer never takes mu_, which is why
  // quiescing under mu_ is deadlock-free). Async sessions that release mu_
  // mid-commit leave a guard behind — pending_names_ for an in-flight
  // install, busy_ids_ for an in-flight revoke — so concurrent sessions
  // can't double-book a name or mutate a program the writer still owns.
  Result<std::vector<LinkResult>> link_locked(std::string_view source);
  Result<LinkResult> link_one_locked(const rp::TranslatedProgram& ir,
                                     ProgramId replacing = 0,
                                     TenantId tenant = 0);
  /// Admitted session body: everything after the admission grant (quota
  /// gate, off-lock solve, locked reserve+commit, retry loop). The caller
  /// (link_session) owns the grant and releases it afterwards.
  Result<LinkResult> link_session_admitted(const rp::TranslatedProgram& ir,
                                           TenantId tenant,
                                           ParallelLinkOptions options);
  Status revoke_locked(ProgramId id);
  /// One defrag pass under mu_ (channel quiesced by the caller).
  DefragReport defragment_locked(const DefragOptions& options);
  /// Migrate one program: commit a copy at its stored allocation
  /// (replacing = old id, memory carried over), then retire the old copy.
  Result<ProgramId> compact_program_locked(ProgramId id);
  [[nodiscard]] const InstalledProgram* program_unlocked(ProgramId id) const;
  [[nodiscard]] const InstalledProgram* program_by_name_unlocked(
      const std::string& name) const;
  [[nodiscard]] ProgramId next_program_id();
  /// Return the id of a rolled-back deploy: the freshest id un-allocates
  /// (next_id_ decrements), an id drawn from the recycle pool goes back to
  /// it. A failed deploy never *adds* a new id to free_ids_ — only a
  /// successful revoke does — so ids of programs that never ran can't leak
  /// into the pool and alias monitor history.
  void recycle_failed_id(ProgramId id);
  void record_link_histograms(const LinkResult& result);

  dp::RunproDataplane& dataplane_;
  SimClock& clock_;
  rp::Objective objective_;
  obs::Telemetry* telemetry_;
  std::optional<double> fixed_alloc_charge_ms_;
  ResourceManager resources_;
  UpdateEngine updates_;
  void record_event(ControlEvent::Kind kind, ProgramId id, const std::string& name,
                    const std::string& detail = "");

  mutable std::mutex mu_;  ///< session lock (see locking discipline above)
  std::deque<ControlEvent> events_;
  std::map<ProgramId, InstalledProgram> programs_;
  /// Names of installs submitted to the async channel whose session released
  /// mu_ before settling — name-conflict checks treat them as running.
  std::set<std::string> pending_names_;
  /// Programs with an async revoke in flight: the writer owns their handle
  /// vectors, so relink/revoke of these ids conflicts until settled.
  std::set<ProgramId> busy_ids_;
  ProgramId next_id_ = 1;
  std::vector<ProgramId> free_ids_;  ///< fed only by successful revokes
  int filter_generation_ = 0;

  // Multi-tenant state. Both are internally synchronized leaf locks that
  // never acquire anything themselves. The admission controller BLOCKS
  // (queued sessions wait on its cv), so it is never entered with mu_ held
  // — sessions acquire their grant first, then take mu_. The tenant
  // registry never blocks, so charging/releasing under mu_ is fine.
  // auto_defrag_ is guarded by mu_.
  TenantRegistry tenants_;
  AdmissionController admission_;
  bool auto_defrag_ = false;
};

}  // namespace p4runpro::ctrl
