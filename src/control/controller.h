// P4runpro control plane controller: the public runtime-programming API.
// Drives the full link pipeline (parse -> check -> translate -> allocate ->
// generate entries -> consistent update) and program lifecycle
// (monitor / revoke), mirroring the prototype's runtime CLI (paper §5).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "compiler/compiler.h"
#include "compiler/solver.h"
#include "control/resource_manager.h"
#include "control/update_engine.h"
#include "dataplane/runpro_dataplane.h"

namespace p4runpro::obs {
struct Telemetry;
class ProgramHealthMonitor;
class FlightRecorder;
}  // namespace p4runpro::obs

namespace p4runpro::ctrl {

/// Timing breakdown of one program deployment (§6.2.1: deployment delay =
/// allocation delay + update delay; parsing is negligible). `alloc_ms` is
/// real measured solver time; `parse_ms`/`update_ms` come from the
/// simulated control channel.
struct LinkStats {
  double parse_ms = 0.0;
  double alloc_ms = 0.0;
  double update_ms = 0.0;

  [[nodiscard]] double deploy_ms() const noexcept {
    return parse_ms + alloc_ms + update_ms;
  }
};

struct LinkResult {
  ProgramId id = 0;
  std::string name;
  LinkStats stats;
};

/// One control-plane lifecycle event (operator audit log).
struct ControlEvent {
  enum class Kind : std::uint8_t { Link, Relink, Revoke, LinkFailed } kind;
  double t_ms = 0.0;  ///< virtual time
  ProgramId id = 0;
  std::string name;
  std::string detail;  ///< error text for LinkFailed
};

class Controller {
 public:
  /// `telemetry` routes all observations (metrics, phase spans) of this
  /// controller, its update engine, resource manager and the dataplane's
  /// pipeline through one bundle; null selects obs::default_telemetry().
  Controller(dp::RunproDataplane& dataplane, SimClock& clock,
             rp::Objective objective = {}, BfrtCostModel cost = {},
             obs::Telemetry* telemetry = nullptr);

  /// Link every program of a source unit to the running data plane.
  /// All-or-nothing: on failure no program of the unit stays linked.
  Result<std::vector<LinkResult>> link(std::string_view source);

  /// Link a unit expected to contain exactly one program.
  Result<LinkResult> link_single(std::string_view source);

  /// Incremental update (paper §7): atomically replace a running program
  /// with a new version compiled from `source`, preserving the contents of
  /// virtual memories present in both versions. The new version is fully
  /// installed before the old one is disabled, so traffic always sees
  /// exactly one complete version.
  Result<LinkResult> relink(ProgramId old_id, std::string_view source);

  /// Consistently remove a running program and release its resources.
  Status revoke(ProgramId id);
  /// Revoke by program name (names are unique among running programs).
  Status revoke_by_name(const std::string& name);

  // --- monitoring --------------------------------------------------------
  [[nodiscard]] const InstalledProgram* program(ProgramId id) const;
  [[nodiscard]] const InstalledProgram* program_by_name(const std::string& name) const;
  [[nodiscard]] std::vector<ProgramId> running_programs() const;
  [[nodiscard]] std::size_t program_count() const noexcept { return programs_.size(); }

  /// Control-plane memory access (virtual addresses).
  [[nodiscard]] Result<Word> read_memory(ProgramId id, const std::string& vmem,
                                         MemAddr vaddr) const;
  /// Drain the packets REPORTed to the switch CPU since the last drain
  /// (e.g. heavy-hitter notifications).
  [[nodiscard]] std::vector<rmt::Packet> drain_reports();
  /// Packets the program's filter has claimed since it was linked.
  [[nodiscard]] std::uint64_t program_packets(ProgramId id) const;
  /// Dump a whole virtual memory block (the resource manager's
  /// memory-monitoring path, §3.1).
  [[nodiscard]] Result<std::vector<Word>> dump_memory(ProgramId id,
                                                      const std::string& vmem) const;
  /// The hash algorithm whose (masked) output indexes `vmem` — i.e. the
  /// hash unit of the stage that executes the program's HASH_*_MEM on that
  /// memory. Lets the control plane compute bucket indices when populating
  /// or monitoring sketch memories.
  [[nodiscard]] Result<rmt::HashAlgo> hash_algo_for(ProgramId id,
                                                    const std::string& vmem) const;
  Status write_memory(ProgramId id, const std::string& vmem, MemAddr vaddr, Word value);

  /// Lifecycle audit log (most recent last; bounded to the last 1,024
  /// events).
  [[nodiscard]] const std::deque<ControlEvent>& events() const noexcept {
    return events_;
  }

  [[nodiscard]] ResourceManager& resources() noexcept { return resources_; }
  [[nodiscard]] UpdateEngine& updates() noexcept { return updates_; }
  [[nodiscard]] const ResourceManager& resources() const noexcept { return resources_; }
  [[nodiscard]] rp::Objective objective() const noexcept { return objective_; }
  void set_objective(rp::Objective objective) noexcept { objective_ = objective; }

  /// The telemetry bundle this controller reports into.
  [[nodiscard]] obs::Telemetry& telemetry() noexcept { return *telemetry_; }
  [[nodiscard]] const obs::Telemetry& telemetry() const noexcept { return *telemetry_; }

  /// Shortcuts into the bundle's data-plane health instrumentation: the
  /// per-program monitor attached to the pipeline as packet observer, and
  /// the flight recorder it freezes when an alert trips.
  [[nodiscard]] obs::ProgramHealthMonitor& monitor() noexcept;
  [[nodiscard]] const obs::ProgramHealthMonitor& monitor() const noexcept;
  [[nodiscard]] obs::FlightRecorder& flight_recorder() noexcept;

  /// Charge a fixed virtual-time cost per allocation instead of the solver's
  /// measured wall time. Makes full link runs deterministic in virtual time
  /// (reproducible trace exports); reset with std::nullopt.
  void set_fixed_alloc_charge_ms(std::optional<double> ms) noexcept {
    fixed_alloc_charge_ms_ = ms;
  }

 private:
  Result<LinkResult> link_one(const rp::TranslatedProgram& ir,
                              ProgramId replacing = 0);
  [[nodiscard]] ProgramId next_program_id();

  dp::RunproDataplane& dataplane_;
  SimClock& clock_;
  rp::Objective objective_;
  obs::Telemetry* telemetry_;
  std::optional<double> fixed_alloc_charge_ms_;
  ResourceManager resources_;
  UpdateEngine updates_;
  void record_event(ControlEvent::Kind kind, ProgramId id, const std::string& name,
                    const std::string& detail = "");

  std::deque<ControlEvent> events_;
  std::map<ProgramId, InstalledProgram> programs_;
  ProgramId next_id_ = 1;
  std::vector<ProgramId> free_ids_;
  int filter_generation_ = 0;
};

}  // namespace p4runpro::ctrl
