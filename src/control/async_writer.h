// Asynchronous control-channel writer: a single-thread FIFO executor that
// drains staged op-log jobs for one UpdateEngine. One writer models one
// switch's bfrt channel, so jobs execute strictly in submission order — the
// channel serializes writes even when sessions overlap — and the engine's
// channel-cursor state (virtual-time position, coalescing label) is touched
// only from this thread.
//
// Synchronization contract: enqueue() and depth() are safe from any thread;
// wait_idle() blocks the caller until the queue is empty AND no job is
// mid-execution (the cv/mutex pair provides the happens-before edge that
// makes everything the jobs wrote visible to the waiter). The destructor
// drains every queued job before joining, so an engine can be torn down
// with writes still in flight without dropping their completion promises.
//
// The writer itself never touches the session lock, the virtual clock or
// the telemetry bundle — those stay caller-side (see UpdateEngine's
// submit/finish split) — which is what makes wait_idle() under the session
// lock deadlock-free.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

namespace p4runpro::ctrl {

class AsyncWriter {
 public:
  /// Starts the writer thread immediately.
  AsyncWriter();
  /// Drains all queued jobs, then joins the thread.
  ~AsyncWriter();
  AsyncWriter(const AsyncWriter&) = delete;
  AsyncWriter& operator=(const AsyncWriter&) = delete;

  /// Append a job to the FIFO; it runs on the writer thread after every
  /// previously enqueued job has completed.
  void enqueue(std::function<void()> job);

  /// Block until the queue is empty and no job is executing.
  void wait_idle();

  /// Jobs queued plus the one executing (the writer-queue depth gauge).
  [[nodiscard]] std::size_t depth() const;

 private:
  void run();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< signals the writer: job or stop
  std::condition_variable idle_cv_;  ///< signals waiters: drained + idle
  std::deque<std::function<void()>> queue_;
  bool running_job_ = false;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace p4runpro::ctrl
