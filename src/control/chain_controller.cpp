#include "control/chain_controller.h"

#include <algorithm>
#include <cassert>
#include <future>
#include <utility>

#include "compiler/entrygen.h"
#include "control/lock_hold.h"
#include "obs/telemetry.h"

namespace p4runpro::ctrl {

ChainController::ChainController(dp::SwitchChain& chain, SimClock& clock,
                                 rp::Objective objective, BfrtCostModel cost,
                                 obs::Telemetry* telemetry)
    : chain_(chain),
      clock_(clock),
      objective_(objective),
      telemetry_(&obs::telemetry_or_default(telemetry)),
      solve_pool_(std::min<unsigned>(
          static_cast<unsigned>(std::max(chain.length(), 1)),
          common::ThreadPool::default_thread_count())) {
  telemetry_->tracer.set_clock(&clock_);
  telemetry_->monitor.set_clock(&clock_);
  for (int h = 0; h < chain_.length(); ++h) {
    hops_.push_back(std::make_unique<Hop>(chain_.switch_at(h), clock_, cost));
    hops_.back()->updates.set_telemetry(telemetry_);
    hops_.back()->updates.set_hop_label(h);
  }
}

std::vector<ChainHop> ChainController::hop_contexts() {
  std::vector<ChainHop> contexts;
  contexts.reserve(hops_.size());
  for (int h = 0; h < chain_.length(); ++h) {
    contexts.push_back(ChainHop{&chain_.switch_at(h), &hops_[static_cast<std::size_t>(h)]->resources,
                                &hops_[static_cast<std::size_t>(h)]->updates});
  }
  return contexts;
}

ProgramId ChainController::next_program_id() {
  if (!free_ids_.empty()) {
    const ProgramId id = free_ids_.back();
    free_ids_.pop_back();
    return id;
  }
  return next_id_++;
}

void ChainController::recycle_failed_id(ProgramId id) {
  if (id == next_id_ - 1) {
    --next_id_;
    return;
  }
  free_ids_.push_back(id);
}

void ChainController::record_event(ControlEvent::Kind kind, ProgramId id,
                                   const std::string& name,
                                   const std::string& detail) {
  events_.push_back(ControlEvent{kind, clock_.now_ms(), id, name, detail});
  if (events_.size() > 1024) events_.pop_front();
  const char* counter = nullptr;
  switch (kind) {
    case ControlEvent::Kind::Link: counter = "ctrl.chain.events.link"; break;
    case ControlEvent::Kind::Relink: counter = "ctrl.chain.events.relink"; break;
    case ControlEvent::Kind::Revoke: counter = "ctrl.chain.events.revoke"; break;
    case ControlEvent::Kind::LinkFailed:
      counter = "ctrl.chain.events.link_failed";
      break;
    case ControlEvent::Kind::RevokeFailed:
      counter = "ctrl.chain.events.revoke_failed";
      break;
  }
  if (counter != nullptr) telemetry_->metrics.counter(counter).inc();
}

const std::string* ChainController::running_name(ProgramId id) const {
  const auto it = running_.find(id);
  return it == running_.end() ? nullptr : &it->second;
}

bool ChainController::name_running(const std::string& name) const {
  for (const auto& [id, running] : running_) {
    (void)id;
    if (running == name) return true;
  }
  return false;
}

Result<std::vector<rp::AllocationResult>> ChainController::solve_all_locked(
    const rp::TranslatedProgram& ir, double* alloc_ms) {
  auto solve_span = telemetry_->tracer.span("chain_txn.solve", "ctrl");
  solve_span.arg("hops", static_cast<std::uint64_t>(hops_.size()));

  // One solve per hop, in parallel on the internal pool, each against its
  // hop's own free-resource snapshot. Occupancies evolve in lockstep, so
  // the solves are expected to agree — check_allocs_agree enforces it.
  WallTimer timer;
  std::vector<std::future<Result<rp::AllocationResult>>> futures;
  futures.reserve(hops_.size());
  for (auto& hop : hops_) {
    futures.push_back(solve_pool_.submit(
        [&ir, snapshot = hop->resources.snapshot(),
         spec = hop->resources.spec(), objective = objective_] {
          return rp::solve_allocation(ir, spec, snapshot, objective, nullptr);
        }));
  }
  std::vector<rp::AllocationResult> allocs;
  allocs.reserve(futures.size());
  std::optional<Error> first_error;
  for (auto& future : futures) {
    auto alloc = future.get();
    if (!alloc.ok()) {
      if (!first_error) first_error = alloc.error();
      continue;
    }
    allocs.push_back(std::move(alloc).take());
  }
  const double charged_ms =
      fixed_alloc_charge_ms_ ? *fixed_alloc_charge_ms_ : timer.elapsed_ms();
  clock_.advance_ms(charged_ms);
  if (alloc_ms != nullptr) *alloc_ms = charged_ms;
  if (first_error) return *first_error;
  if (auto s = check_allocs_agree(ir, allocs); !s.ok()) return s.error();
  return allocs;
}

Status ChainController::check_allocs_agree(
    const rp::TranslatedProgram& ir,
    const std::vector<rp::AllocationResult>& allocs) const {
  for (std::size_t h = 1; h < allocs.size(); ++h) {
    if (allocs[h].x != allocs[0].x || allocs[h].vmem_rpb != allocs[0].vmem_rpb) {
      return Error{"per-hop allocations diverged at hop " + std::to_string(h) +
                       " — chain occupancies must evolve in lockstep",
                   "ChainController", ErrorCode::Conflict};
    }
  }
  const int total_rpbs = chain_.spec_at(0).total_rpbs();
  if (auto s = dp::SwitchChain::chain_compatibility(ir.vmem_depths, allocs[0].x,
                                                    total_rpbs);
      !s.ok()) {
    return s;
  }
  if (allocs[0].rounds > chain_.length()) {
    return Error{"program '" + ir.name + "' needs " +
                     std::to_string(allocs[0].rounds) + " rounds but the chain "
                     "has only " + std::to_string(chain_.length()) + " hops",
                 "ChainController", ErrorCode::InvalidArgument};
  }
  return {};
}

Result<ChainController::DeployOutcome> ChainController::deploy_locked(
    const rp::TranslatedProgram& ir, ProgramId replacing) {
  auto fail = [&](ProgramId id, int faulted_hop, const Error& err) -> Error {
    if (id != 0) {
      telemetry_->monitor.chain_txn_rolled_back(id, ir.name, length(),
                                                faulted_hop, err.str());
    }
    record_event(ControlEvent::Kind::LinkFailed, id, ir.name, err.str());
    return err;
  };

  if (auto s = chain_.uniform_specs(); !s.ok()) return fail(0, -1, s.error());
  if (name_running(ir.name) &&
      (replacing == 0 || running_.at(replacing) != ir.name)) {
    return fail(0, -1,
                Error{"a program named '" + ir.name + "' is already running",
                      "ChainController", ErrorCode::Conflict});
  }

  double alloc_ms = 0.0;
  auto allocs = solve_all_locked(ir, &alloc_ms);
  if (!allocs.ok()) return fail(0, -1, allocs.error());

  const ProgramId id = next_program_id();
  auto txn = std::make_unique<ChainTransaction>(
      hop_contexts(), ir, std::move(allocs).take(), id, ++filter_generation_,
      replacing, telemetry_);
  if (auto s = txn->stage_all(); !s.ok()) {
    recycle_failed_id(id);
    return fail(id, txn->faulted_hop(), s.error());
  }
  const double update_start_ms = clock_.now_ms();
  if (auto s = txn->commit_all(); !s.ok()) {
    recycle_failed_id(id);
    return fail(id, txn->faulted_hop(), s.error());
  }
  const double update_ms = clock_.now_ms() - update_start_ms;
  telemetry_->monitor.chain_txn_committed(id, ir.name, length());

  DeployOutcome outcome;
  outcome.result.id = id;
  outcome.result.name = ir.name;
  outcome.result.stats.alloc_ms = alloc_ms;
  outcome.result.stats.update_ms = update_ms;
  outcome.txn = std::move(txn);
  telemetry_->metrics.histogram("ctrl.chain.deploy_ms")
      .observe(outcome.result.stats.deploy_ms());
  return outcome;
}

void ChainController::adopt_locked(DeployOutcome& outcome) {
  const ProgramId id = outcome.result.id;
  auto& installed = outcome.txn->installed();
  assert(installed.size() == hops_.size());
  for (std::size_t h = 0; h < hops_.size(); ++h) {
    hops_[h]->programs.insert_or_assign(id, std::move(installed[h]));
  }
  running_.insert_or_assign(id, outcome.result.name);
}

Result<LinkResult> ChainController::link(std::string_view source) {
  std::lock_guard<std::mutex> lock(mu_);
  obs::TraceScope trace(telemetry_);
  LockHoldTimer hold(clock_, telemetry_);
  auto link_span = telemetry_->tracer.span("chain_link", "ctrl");
  const double parse_start_ms = clock_.now_ms();
  auto compiled = rp::compile_source(source, telemetry_);
  clock_.advance_ms(2.0);
  if (!compiled.ok()) {
    record_event(ControlEvent::Kind::LinkFailed, 0, "<compile>",
                 compiled.error().str());
    return compiled.error();
  }
  if (compiled.value().size() != 1) {
    return Error{"chain link expects a single-program source unit",
                 "ChainController", ErrorCode::InvalidArgument};
  }
  const double parse_ms = clock_.now_ms() - parse_start_ms;

  auto outcome = deploy_locked(compiled.value().front(), 0);
  if (!outcome.ok()) return outcome.error();
  adopt_locked(outcome.value());
  outcome.value().result.stats.parse_ms = parse_ms;
  outcome.value().result.trace = trace.trace_id();
  record_event(ControlEvent::Kind::Link, outcome.value().result.id,
               outcome.value().result.name);
  return std::move(outcome.value().result);
}

std::vector<Result<LinkResult>> ChainController::link_many(
    const std::vector<std::string>& sources, common::ThreadPool& pool,
    ParallelLinkOptions options) {
  std::vector<std::future<Result<LinkResult>>> futures;
  futures.reserve(sources.size());
  for (const auto& source : sources) {
    futures.push_back(pool.submit(
        [this, &source, options] { return link_one_parallel(source, options); }));
  }
  std::vector<Result<LinkResult>> results;
  results.reserve(futures.size());
  for (auto& future : futures) results.push_back(future.get());
  return results;
}

Result<LinkResult> ChainController::link_one_parallel(const std::string& source,
                                                      ParallelLinkOptions options) {
  // Compile off-lock: pure compute, no shared state.
  auto compiled = rp::compile_source(source, nullptr);
  if (!compiled.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    clock_.advance_ms(2.0);
    record_event(ControlEvent::Kind::LinkFailed, 0, "<compile>",
                 compiled.error().str());
    return compiled.error();
  }
  if (compiled.value().size() != 1) {
    return Error{"link_many expects single-program source units",
                 "ChainController", ErrorCode::InvalidArgument};
  }
  const rp::TranslatedProgram& ir = compiled.value().front();

  // Admission gate (blocking; strictly before mu_): bounds in-flight chain
  // sessions and sheds past the queue bound with AdmissionShed. Chain
  // sessions all run as the default tenant at weight 1, so the fair queue
  // degrades to FIFO.
  auto grant = admission_.acquire(0, 1.0);
  if (!grant.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    telemetry_->metrics.counter("ctrl.tenant.shed").inc();
    telemetry_->monitor.admission_shed(0, ir.name, grant.error().str());
    record_event(ControlEvent::Kind::LinkFailed, 0, ir.name, grant.error().str());
    return grant.error();
  }
  struct Release {
    AdmissionController& admission;
    ~Release() { admission.release(); }
  } releaser{admission_};

  Error conflict{"parallel chain link: retries exhausted", "ChainController",
                 ErrorCode::AllocFailed};
  for (int attempt = 0; attempt <= options.max_solve_retries; ++attempt) {
    // Per-hop snapshots under a brief lock, solves off-lock on the internal
    // pool (chain specs and the objective are immutable after construction).
    std::vector<ResourceManager::Snapshot> snapshots;
    {
      std::lock_guard<std::mutex> lock(mu_);
      snapshots.reserve(hops_.size());
      for (auto& hop : hops_) snapshots.push_back(hop->resources.snapshot());
    }
    WallTimer timer;
    std::vector<std::future<Result<rp::AllocationResult>>> futures;
    futures.reserve(hops_.size());
    for (std::size_t h = 0; h < hops_.size(); ++h) {
      futures.push_back(solve_pool_.submit(
          [&ir, snapshot = std::move(snapshots[h]),
           spec = chain_.spec_at(static_cast<int>(h)), objective = objective_] {
            return rp::solve_allocation(ir, spec, snapshot, objective, nullptr);
          }));
    }
    std::vector<rp::AllocationResult> allocs;
    allocs.reserve(futures.size());
    std::optional<Error> solve_error;
    for (auto& future : futures) {
      auto alloc = future.get();
      if (!alloc.ok()) {
        if (!solve_error) solve_error = alloc.error();
        continue;
      }
      allocs.push_back(std::move(alloc).take());
    }
    const double solve_ms = timer.elapsed_ms();

    // Reservation + two-phase commit serialize under the session lock.
    std::unique_lock<std::mutex> lock(mu_);
    // Per-attempt trace scope (bundle-shared state, lock-protected).
    obs::TraceScope trace(telemetry_);
    LockHoldTimer hold(clock_, telemetry_);
    if (attempt == 0) clock_.advance_ms(2.0);  // parse charge, once
    const double alloc_ms =
        fixed_alloc_charge_ms_ ? *fixed_alloc_charge_ms_ : solve_ms;
    clock_.advance_ms(alloc_ms);
    if (solve_error) {
      record_event(ControlEvent::Kind::LinkFailed, 0, ir.name,
                   solve_error->str());
      return *solve_error;
    }
    if (auto s = check_allocs_agree(ir, allocs); !s.ok()) {
      record_event(ControlEvent::Kind::LinkFailed, 0, ir.name, s.error().str());
      return s.error();
    }
    if (name_running(ir.name)) {
      const Error err{"a program named '" + ir.name + "' is already running",
                      "ChainController", ErrorCode::Conflict};
      record_event(ControlEvent::Kind::LinkFailed, 0, ir.name, err.str());
      return err;
    }

    const ProgramId id = next_program_id();
    ChainTransaction txn(hop_contexts(), ir, std::move(allocs), id,
                         ++filter_generation_, 0, telemetry_);
    if (auto s = txn.stage_all(); !s.ok()) {
      recycle_failed_id(id);
      if (s.error().code == ErrorCode::AllocFailed &&
          attempt < options.max_solve_retries) {
        // Another session took the resources between snapshot and lock.
        conflict = s.error();
        telemetry_->metrics.counter("ctrl.link.retries").inc();
        continue;
      }
      telemetry_->monitor.chain_txn_rolled_back(id, ir.name, length(),
                                                txn.faulted_hop(), s.error().str());
      record_event(ControlEvent::Kind::LinkFailed, id, ir.name, s.error().str());
      return s.error();
    }
    const double update_start_ms = clock_.now_ms();
    if (auto s = txn.commit_all(); !s.ok()) {
      recycle_failed_id(id);
      telemetry_->monitor.chain_txn_rolled_back(id, ir.name, length(),
                                                txn.faulted_hop(), s.error().str());
      record_event(ControlEvent::Kind::LinkFailed, id, ir.name, s.error().str());
      return s.error();
    }
    const double update_ms = clock_.now_ms() - update_start_ms;
    telemetry_->monitor.chain_txn_committed(id, ir.name, length());
    for (std::size_t h = 0; h < hops_.size(); ++h) {
      hops_[h]->programs.insert_or_assign(id, std::move(txn.installed()[h]));
    }
    running_.insert_or_assign(id, ir.name);
    record_event(ControlEvent::Kind::Link, id, ir.name);

    LinkResult result;
    result.id = id;
    result.name = ir.name;
    result.stats.parse_ms = 2.0;
    result.stats.alloc_ms = alloc_ms;
    result.stats.update_ms = update_ms;
    result.trace = trace.trace_id();
    telemetry_->metrics.histogram("ctrl.chain.deploy_ms")
        .observe(result.stats.deploy_ms());
    return result;
  }
  return conflict;
}

Result<LinkResult> ChainController::relink(ProgramId old_id,
                                           std::string_view source) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string* old_name = running_name(old_id);
  if (old_name == nullptr) {
    return Error{"no running program with id " + std::to_string(old_id),
                 "ChainController", ErrorCode::NotFound};
  }
  obs::TraceScope trace(telemetry_);
  LockHoldTimer hold(clock_, telemetry_);
  auto relink_span = telemetry_->tracer.span("chain_relink", "ctrl");
  auto compiled = rp::compile_source(source, telemetry_);
  clock_.advance_ms(2.0);
  if (!compiled.ok()) return compiled.error();
  if (compiled.value().size() != 1) {
    return Error{"relink expects exactly one program", "ChainController",
                 ErrorCode::InvalidArgument};
  }
  const rp::TranslatedProgram& ir = compiled.value().front();

  // The new version commits chain-wide first (invisible until each hop's
  // filter lands, and the fresh filter generation outranks the old one);
  // only then is the old version retired chain-wide.
  auto outcome = deploy_locked(ir, old_id);
  if (!outcome.ok()) return outcome.error();
  const ProgramId new_id = outcome.value().result.id;

  int faulted_hop = -1;
  if (auto s = remove_chain_wide(old_id, &faulted_hop); !s.ok()) {
    // The old version was restored on every hop; unwind the new version
    // chain-wide so exactly the pre-relink truth remains.
    outcome.value().txn->unwind_commit();
    recycle_failed_id(new_id);
    telemetry_->monitor.chain_txn_rolled_back(new_id, ir.name, length(),
                                              faulted_hop, s.error().str());
    record_event(ControlEvent::Kind::LinkFailed, new_id, ir.name,
                 s.error().str());
    return s.error();
  }
  const std::string retired_name = *running_name(old_id);
  free_ids_.push_back(old_id);
  running_.erase(old_id);
  adopt_locked(outcome.value());
  outcome.value().result.trace = trace.trace_id();
  record_event(ControlEvent::Kind::Revoke, old_id, retired_name);
  record_event(ControlEvent::Kind::Relink, new_id, ir.name);
  return std::move(outcome.value().result);
}

Status ChainController::revoke(ProgramId id) {
  std::lock_guard<std::mutex> lock(mu_);
  obs::TraceScope trace(telemetry_);
  LockHoldTimer hold(clock_, telemetry_);
  return revoke_locked(id);
}

Status ChainController::revoke_locked(ProgramId id) {
  const std::string* name = running_name(id);
  if (name == nullptr) {
    return Error{"no running program with id " + std::to_string(id),
                 "ChainController", ErrorCode::NotFound};
  }
  const std::string program_name = *name;
  auto revoke_span = telemetry_->tracer.span("chain_revoke", "ctrl");
  int faulted_hop = -1;
  if (auto s = remove_chain_wide(id, &faulted_hop); !s.ok()) {
    telemetry_->monitor.chain_txn_rolled_back(id, program_name, length(),
                                              faulted_hop, s.error().str());
    record_event(ControlEvent::Kind::RevokeFailed, id, program_name,
                 s.error().str());
    return s;
  }
  free_ids_.push_back(id);
  running_.erase(id);
  record_event(ControlEvent::Kind::Revoke, id, program_name);
  return {};
}

Status ChainController::revoke_by_name(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  obs::TraceScope trace(telemetry_);
  LockHoldTimer hold(clock_, telemetry_);
  for (const auto& [id, running] : running_) {
    if (running == name) return revoke_locked(id);
  }
  return Error{"no running program named '" + name + "'", "ChainController",
               ErrorCode::NotFound};
}

ChainController::HopImage ChainController::capture_image(
    int hop, const InstalledProgram& program) const {
  HopImage image;
  image.program = program;
  const dp::RunproDataplane& dataplane = chain_.switch_at(hop);
  for (const auto& [vmem, placement] : program.placements) {
    std::vector<Word> words;
    words.reserve(placement.block.size);
    const auto& memory = dataplane.rpb(placement.rpb).memory();
    for (std::uint32_t a = 0; a < placement.block.size; ++a) {
      words.push_back(memory.read(placement.block.base + a));
    }
    image.words.emplace(vmem, std::move(words));
  }
  return image;
}

Status ChainController::remove_chain_wide(ProgramId id, int* faulted_hop) {
  // Pre-removal images first: a fault at hop h needs every hop already
  // removed re-installed byte-identically, contents included.
  std::vector<HopImage> images;
  images.reserve(hops_.size());
  for (std::size_t h = 0; h < hops_.size(); ++h) {
    images.push_back(capture_image(static_cast<int>(h),
                                   hops_[h]->programs.at(id)));
  }

  bool all_async = true;
  for (const auto& hop : hops_) all_async = all_async && hop->updates.async();
  if (all_async) {
    // Pipelined removal: submit every hop's consistent remove up front so
    // the per-hop channels drain concurrently, then settle in hop order
    // with per-hop resource bookkeeping.
    std::vector<std::map<int, std::uint32_t>> entries(hops_.size());
    std::vector<UpdateEngine::PendingWrite> pendings;
    pendings.reserve(hops_.size());
    for (std::size_t h = 0; h < hops_.size(); ++h) {
      InstalledProgram& program = hops_[h]->programs.at(id);
      for (const auto& [rpb, handle] : program.rpb_handles) {
        (void)handle;
        ++entries[h][rpb];
      }
      pendings.push_back(hops_[h]->updates.submit_remove(program));
    }
    std::vector<bool> removed_ok(hops_.size(), false);
    int first_fault = -1;
    Status first_error;
    for (std::size_t h = 0; h < hops_.size(); ++h) {
      Hop& hop = *hops_[h];
      InstalledProgram& program = hop.programs.at(id);
      const Status s = hop.updates.finish_remove(pendings[h], program);
      if (!s.ok()) {
        // Hop h's removal journal restored the program there. Keep settling
        // the remaining hops — their writes are already in flight.
        if (first_fault < 0) {
          first_fault = static_cast<int>(h);
          first_error = s;
        }
        continue;
      }
      removed_ok[h] = true;
      for (const auto& [rpb, count] : entries[h]) {
        hop.resources.release_entries(rpb, count);
      }
      hop.resources.erase_program(id);
      chain_.switch_at(static_cast<int>(h)).init_block().clear_counter(id);
      hop.programs.erase(id);
    }
    if (first_fault >= 0) {
      // Re-install every hop that removed cleanly — including hops AFTER
      // the faulted one (their removes were in flight when the fault
      // surfaced) — nearest-last so hop order of the restore mirrors the
      // serial unwind.
      for (std::size_t g = hops_.size(); g-- > 0;) {
        if (removed_ok[g]) reinstall_hop(static_cast<int>(g), std::move(images[g]));
      }
      if (faulted_hop != nullptr) *faulted_hop = first_fault;
      return first_error;
    }
    return {};
  }

  for (std::size_t h = 0; h < hops_.size(); ++h) {
    Hop& hop = *hops_[h];
    InstalledProgram& program = hop.programs.at(id);
    std::map<int, std::uint32_t> entries_per_rpb;
    for (const auto& [rpb, handle] : program.rpb_handles) {
      (void)handle;
      ++entries_per_rpb[rpb];
    }
    if (auto s = hop.updates.remove(program); !s.ok()) {
      // Hop h's removal journal restored the program there (fresh
      // handles, resources intact). Re-install the hops already removed,
      // nearest first.
      for (std::size_t g = h; g-- > 0;) {
        reinstall_hop(static_cast<int>(g), std::move(images[g]));
      }
      if (faulted_hop != nullptr) *faulted_hop = static_cast<int>(h);
      return s;
    }
    for (const auto& [rpb, count] : entries_per_rpb) {
      hop.resources.release_entries(rpb, count);
    }
    hop.resources.erase_program(id);
    chain_.switch_at(static_cast<int>(h)).init_block().clear_counter(id);
    hop.programs.erase(id);
  }
  return {};
}

void ChainController::reinstall_hop(int hop, HopImage image) {
  Hop& h = *hops_[static_cast<std::size_t>(hop)];
  const ProgramId id = image.program.id;

  // The exact blocks are provably still free: nothing allocated between the
  // removal and this unwind (session lock). A reclaim failure is a journal
  // bug, same convention as the single-switch rollback.
  for (const auto& [vmem, placement] : image.program.placements) {
    (void)vmem;
    const Status reclaimed = h.resources.reclaim_block(placement.rpb,
                                                       placement.block);
    assert(reclaimed.ok() && "chain unwind reclaim must not fail");
    (void)reclaimed;
  }
  std::map<int, std::uint32_t> entries_per_rpb;
  for (const auto& [rpb, handle] : image.program.rpb_handles) {
    (void)handle;
    ++entries_per_rpb[rpb];
  }
  for (const auto& [rpb, count] : entries_per_rpb) {
    const Status reserved = h.resources.reserve_entries(rpb, count);
    assert(reserved.ok() && "chain unwind re-reserve must not fail");
    (void)reserved;
  }

  // Replay the install: saved memory contents first, then the entry plan in
  // consistent-update order. The engine hands back fresh handles.
  dp::WriteBatch batch;
  for (const auto& [vmem, placement] : image.program.placements) {
    batch.write_mem_range(placement.rpb, placement.block.base,
                          std::move(image.words.at(vmem)), vmem);
  }
  rp::stage_install(image.program.plan, batch);
  auto applied = h.updates.execute_install(batch);
  assert(applied.ok() && "chain unwind reinstall must not fault");
  image.program.filter_handles = std::move(applied.value().filter_handles);
  image.program.rpb_handles = std::move(applied.value().rpb_handles);
  image.program.recirc_handles = std::move(applied.value().recirc_handles);
  h.resources.record_program(id, image.program.placements);
  h.programs.insert_or_assign(id, std::move(image.program));
}

void ChainController::set_async_writes(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& hop : hops_) hop->updates.set_async(enabled);
}

bool ChainController::async_writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  bool all = !hops_.empty();
  for (const auto& hop : hops_) all = all && hop->updates.async();
  return all;
}

void ChainController::quiesce_all() const {
  for (const auto& hop : hops_) hop->updates.wait_idle();
}

const InstalledProgram* ChainController::program_at_unlocked(int hop,
                                                             ProgramId id) const {
  const auto& programs = hops_[static_cast<std::size_t>(hop)]->programs;
  const auto it = programs.find(id);
  return it == programs.end() ? nullptr : &it->second;
}

const InstalledProgram* ChainController::program_at(int hop, ProgramId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  quiesce_all();
  return program_at_unlocked(hop, id);
}

std::vector<ProgramId> ChainController::running_programs() const {
  std::lock_guard<std::mutex> lock(mu_);
  quiesce_all();
  std::vector<ProgramId> ids;
  ids.reserve(running_.size());
  for (const auto& [id, name] : running_) {
    (void)name;
    ids.push_back(id);
  }
  return ids;
}

std::size_t ChainController::program_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  quiesce_all();
  return running_.size();
}

std::deque<ControlEvent> ChainController::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  quiesce_all();
  return events_;
}

Result<int> ChainController::owning_hop_unlocked(ProgramId id,
                                                 const std::string& vmem) const {
  const InstalledProgram* program = program_at_unlocked(0, id);
  if (program == nullptr) {
    return Error{"unknown program", "ChainController", ErrorCode::NotFound};
  }
  const auto it = program->ir.vmem_depths.find(vmem);
  if (it == program->ir.vmem_depths.end() || it->second.empty()) {
    return Error{"unknown memory '" + vmem + "'", "ChainController",
                 ErrorCode::NotFound};
  }
  // Chain compatibility guarantees every access shares one round = one hop.
  const int logical =
      program->alloc.x[static_cast<std::size_t>(it->second.front() - 1)];
  return dp::recirc_round(logical, chain_.spec_at(0).total_rpbs());
}

Result<int> ChainController::owning_hop(ProgramId id,
                                        const std::string& vmem) const {
  std::lock_guard<std::mutex> lock(mu_);
  quiesce_all();
  return owning_hop_unlocked(id, vmem);
}

Result<Word> ChainController::read_memory(ProgramId id, const std::string& vmem,
                                          MemAddr vaddr) const {
  std::lock_guard<std::mutex> lock(mu_);
  quiesce_all();
  auto hop = owning_hop_unlocked(id, vmem);
  if (!hop.ok()) return hop.error();
  return hops_[static_cast<std::size_t>(hop.value())]->resources.read_virtual(
      chain_.switch_at(hop.value()), id, vmem, vaddr);
}

Status ChainController::write_memory(ProgramId id, const std::string& vmem,
                                     MemAddr vaddr, Word value) {
  std::lock_guard<std::mutex> lock(mu_);
  // The writers own the dataplanes while jobs are in flight; drain before
  // touching memory from this thread.
  quiesce_all();
  auto hop = owning_hop_unlocked(id, vmem);
  if (!hop.ok()) return hop.error();
  return hops_[static_cast<std::size_t>(hop.value())]->resources.write_virtual(
      chain_.switch_at(hop.value()), id, vmem, vaddr, value);
}

Result<std::vector<Word>> ChainController::dump_memory(
    ProgramId id, const std::string& vmem) const {
  std::lock_guard<std::mutex> lock(mu_);
  quiesce_all();
  auto hop = owning_hop_unlocked(id, vmem);
  if (!hop.ok()) return hop.error();
  const auto& resources = hops_[static_cast<std::size_t>(hop.value())]->resources;
  const auto* placements = resources.program_placements(id);
  if (placements == nullptr) {
    return Error{"unknown program", "ChainController", ErrorCode::NotFound};
  }
  const auto it = placements->find(vmem);
  if (it == placements->end()) {
    return Error{"unknown memory '" + vmem + "'", "ChainController",
                 ErrorCode::NotFound};
  }
  std::vector<Word> out;
  out.reserve(it->second.block.size);
  const auto& memory =
      chain_.switch_at(hop.value()).rpb(it->second.rpb).memory();
  for (std::uint32_t a = 0; a < it->second.block.size; ++a) {
    out.push_back(memory.read(it->second.block.base + a));
  }
  return out;
}

std::uint64_t ChainController::program_packets(ProgramId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  quiesce_all();
  return chain_.switch_at(0).init_block().claimed_packets(id);
}

ResourceManager& ChainController::resources(int hop) {
  return hops_[static_cast<std::size_t>(hop)]->resources;
}

const ResourceManager& ChainController::resources(int hop) const {
  return hops_[static_cast<std::size_t>(hop)]->resources;
}

UpdateEngine& ChainController::updates(int hop) {
  return hops_[static_cast<std::size_t>(hop)]->updates;
}

}  // namespace p4runpro::ctrl
