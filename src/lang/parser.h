// Recursive-descent parser for the P4runpro DSL; replaces the prototype's
// Yacc half of PLY. Produces the AST of lang/ast.h or a diagnostic.
#pragma once

#include <string_view>

#include "common/result.h"
#include "lang/ast.h"

namespace p4runpro::lang {

/// Parse a whole source unit (annotations + one or more programs).
[[nodiscard]] Result<Unit> parse(std::string_view source);

}  // namespace p4runpro::lang
