#include "lang/parser.h"

#include <utility>

#include "lang/lexer.h"

namespace p4runpro::lang {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Unit> run() {
    Unit unit;
    while (peek().kind == TokenKind::At) {
      auto ann = parse_annotation();
      if (!ann.ok()) return ann.error();
      unit.annotations.push_back(std::move(ann).take());
    }
    while (peek().kind != TokenKind::End) {
      auto prog = parse_program();
      if (!prog.ok()) return prog.error();
      unit.programs.push_back(std::move(prog).take());
    }
    if (unit.programs.empty()) return fail<Unit>("expected at least one program");
    return unit;
  }

 private:
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const noexcept {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() noexcept {
    const Token& t = peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  [[nodiscard]] bool check(TokenKind kind) const noexcept { return peek().kind == kind; }
  bool match(TokenKind kind) noexcept {
    if (!check(kind)) return false;
    advance();
    return true;
  }

  template <typename T>
  Result<T> fail(std::string message) const {
    const Token& t = peek();
    return Error{std::move(message),
                 "line " + std::to_string(t.line) + ":" + std::to_string(t.column),
                 ErrorCode::ParseError};
  }
  Status expect(TokenKind kind, const char* what) {
    if (match(kind)) return {};
    const Token& t = peek();
    return Error{std::string("expected ") + what + ", found '" +
                     (t.kind == TokenKind::Identifier ? t.text
                                                      : token_kind_name(t.kind)) +
                     "'",
                 "line " + std::to_string(t.line) + ":" + std::to_string(t.column),
                 ErrorCode::ParseError};
  }

  Result<Annotation> parse_annotation() {
    Annotation ann;
    ann.line = peek().line;
    advance();  // '@'
    if (!check(TokenKind::Identifier)) return fail<Annotation>("expected memory identifier after '@'");
    ann.name = advance().text;
    if (!check(TokenKind::Integer)) return fail<Annotation>("expected memory size after identifier");
    ann.size = advance().value;
    return ann;
  }

  Result<ProgramDecl> parse_program() {
    ProgramDecl prog;
    prog.line = peek().line;
    if (!check(TokenKind::Identifier) || peek().text != "program") {
      return fail<ProgramDecl>("expected 'program'");
    }
    advance();
    if (!check(TokenKind::Identifier)) return fail<ProgramDecl>("expected program name");
    prog.name = advance().text;
    if (auto s = expect(TokenKind::LParen, "'('"); !s.ok()) return s.error();
    do {
      auto filter = parse_filter();
      if (!filter.ok()) return filter.error();
      prog.filters.push_back(std::move(filter).take());
    } while (match(TokenKind::Comma));
    if (auto s = expect(TokenKind::RParen, "')'"); !s.ok()) return s.error();
    if (auto s = expect(TokenKind::LBrace, "'{'"); !s.ok()) return s.error();
    auto body = parse_body();
    if (!body.ok()) return body.error();
    prog.body = std::move(body).take();
    if (auto s = expect(TokenKind::RBrace, "'}'"); !s.ok()) return s.error();
    return prog;
  }

  Result<Filter> parse_filter() {
    Filter f;
    f.line = peek().line;
    if (auto s = expect(TokenKind::Less, "'<'"); !s.ok()) return s.error();
    if (!check(TokenKind::Identifier)) return fail<Filter>("expected field name in filter");
    f.field = advance().text;
    if (auto s = expect(TokenKind::Comma, "','"); !s.ok()) return s.error();
    if (!check(TokenKind::Integer)) return fail<Filter>("expected value in filter");
    f.value = advance().value;
    if (auto s = expect(TokenKind::Comma, "','"); !s.ok()) return s.error();
    if (!check(TokenKind::Integer)) return fail<Filter>("expected mask in filter");
    f.mask = advance().value;
    if (auto s = expect(TokenKind::Greater, "'>'"); !s.ok()) return s.error();
    return f;
  }

  /// primitive* up to (not consuming) '}'.
  Result<std::vector<Primitive>> parse_body() {
    std::vector<Primitive> body;
    while (!check(TokenKind::RBrace) && !check(TokenKind::End)) {
      auto prim = parse_primitive();
      if (!prim.ok()) return prim.error();
      body.push_back(std::move(prim).take());
    }
    return body;
  }

  Result<Primitive> parse_primitive() {
    Primitive prim;
    prim.line = peek().line;
    if (!check(TokenKind::Identifier)) return fail<Primitive>("expected primitive name");
    const std::string name = advance().text;
    const auto kind = prim_from_name(name);
    if (!kind) return fail<Primitive>("unknown primitive '" + name + "'");
    prim.kind = *kind;

    if (prim.kind == PrimKind::Branch) {
      if (auto s = expect(TokenKind::Colon, "':' after BRANCH"); !s.ok()) return s.error();
      while (check(TokenKind::Identifier) && peek().text == "case") {
        auto c = parse_case();
        if (!c.ok()) return c.error();
        prim.cases.push_back(std::move(c).take());
      }
      if (prim.cases.empty()) return fail<Primitive>("BRANCH needs at least one case");
      match(TokenKind::Semicolon);  // optional terminator after the last case
      return prim;
    }

    if (match(TokenKind::LParen)) {
      if (!check(TokenKind::RParen)) {
        do {
          auto arg = parse_argument();
          if (!arg.ok()) return arg.error();
          prim.args.push_back(std::move(arg).take());
        } while (match(TokenKind::Comma));
      }
      if (auto s = expect(TokenKind::RParen, "')'"); !s.ok()) return s.error();
    }
    if (auto s = expect(TokenKind::Semicolon, "';'"); !s.ok()) return s.error();
    return prim;
  }

  Result<Case> parse_case() {
    Case c;
    c.line = peek().line;
    advance();  // 'case'
    if (auto s = expect(TokenKind::LParen, "'(' after case"); !s.ok()) return s.error();
    do {
      auto cond = parse_condition();
      if (!cond.ok()) return cond.error();
      c.conditions.push_back(std::move(cond).take());
    } while (match(TokenKind::Comma));
    if (auto s = expect(TokenKind::RParen, "')'"); !s.ok()) return s.error();
    if (auto s = expect(TokenKind::LBrace, "'{'"); !s.ok()) return s.error();
    auto body = parse_body();
    if (!body.ok()) return body.error();
    c.body = std::move(body).take();
    if (auto s = expect(TokenKind::RBrace, "'}'"); !s.ok()) return s.error();
    match(TokenKind::Semicolon);  // case blocks are conventionally ';'-terminated
    return c;
  }

  Result<Condition> parse_condition() {
    Condition cond;
    cond.line = peek().line;
    if (auto s = expect(TokenKind::Less, "'<'"); !s.ok()) return s.error();
    if (!check(TokenKind::Identifier)) return fail<Condition>("expected register in condition");
    const std::string reg = advance().text;
    if (reg == "har") {
      cond.reg = Reg::Har;
    } else if (reg == "sar") {
      cond.reg = Reg::Sar;
    } else if (reg == "mar") {
      cond.reg = Reg::Mar;
    } else {
      return fail<Condition>("condition must name har, sar or mar (got '" + reg + "')");
    }
    if (auto s = expect(TokenKind::Comma, "','"); !s.ok()) return s.error();
    if (!check(TokenKind::Integer)) return fail<Condition>("expected value in condition");
    cond.value = advance().value;
    if (auto s = expect(TokenKind::Comma, "','"); !s.ok()) return s.error();
    if (!check(TokenKind::Integer)) return fail<Condition>("expected mask in condition");
    cond.mask = advance().value;
    if (auto s = expect(TokenKind::Greater, "'>'"); !s.ok()) return s.error();
    return cond;
  }

  Result<Argument> parse_argument() {
    Argument arg;
    arg.line = peek().line;
    if (check(TokenKind::Integer)) {
      arg.kind = Argument::Kind::Integer;
      arg.value = advance().value;
      return arg;
    }
    if (!check(TokenKind::Identifier)) return fail<Argument>("expected argument");
    const std::string text = advance().text;
    if (text == "har" || text == "sar" || text == "mar") {
      arg.kind = Argument::Kind::Register;
      arg.reg = text == "har" ? Reg::Har : text == "sar" ? Reg::Sar : Reg::Mar;
    } else if (text.find('.') != std::string::npos) {
      arg.kind = Argument::Kind::Field;
      arg.text = text;
    } else {
      arg.kind = Argument::Kind::Identifier;
      arg.text = text;
    }
    return arg;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Unit> parse(std::string_view source) {
  auto tokens = lex(source);
  if (!tokens.ok()) return tokens.error();
  return Parser(std::move(tokens).take()).run();
}

}  // namespace p4runpro::lang
