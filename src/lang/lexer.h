// Hand-written scanner for the P4runpro DSL. Replaces the prototype's
// Python Lex half of PLY (paper §5).
#pragma once

#include <string_view>
#include <vector>

#include "common/result.h"
#include "lang/token.h"

namespace p4runpro::lang {

/// Tokenize a whole program text. Handles `//` and `/* */` comments,
/// binary / decimal / hexadecimal integers, dotted-quad IPv4 values and
/// dotted field identifiers.
[[nodiscard]] Result<std::vector<Token>> lex(std::string_view source);

/// Count the non-blank, non-comment source lines (the LoC metric of
/// Table 1).
[[nodiscard]] int count_loc(std::string_view source);

}  // namespace p4runpro::lang
