// Abstract syntax tree of the P4runpro DSL (paper Fig. 15). Each primitive
// statement becomes an AST node; a BRANCH node owns its case blocks, whose
// bodies are sub-trees ("each branch of the AST represents a conditional
// branch", §4.3).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace p4runpro::lang {

/// Surface-level primitive / pseudo-primitive names (Table 3). Pseudo
/// primitives are lowered by the compiler's translation pass.
enum class PrimKind : std::uint8_t {
  // header interaction
  Extract,
  Modify,
  // hash
  Hash5Tuple,
  Hash,
  Hash5TupleMem,
  HashMem,
  // conditional branch
  Branch,
  // memory
  MemAdd,
  MemSub,
  MemAnd,
  MemOr,
  MemRead,
  MemWrite,
  MemMax,
  // arithmetic & logic
  Loadi,
  Add,
  And,
  Or,
  Max,
  Min,
  Xor,
  // pseudo primitives (Fig. 14)
  Move,
  Not,
  Sub,
  Equal,
  Sgt,
  Slt,
  Addi,
  Andi,
  Xori,
  Subi,
  // forwarding
  Forward,
  Drop,
  Return,
  Report,
  Multicast,  ///< §7 extension: replicate via a traffic-manager group
};

[[nodiscard]] const char* prim_name(PrimKind kind) noexcept;
[[nodiscard]] std::optional<PrimKind> prim_from_name(const std::string& name) noexcept;
[[nodiscard]] bool is_pseudo(PrimKind kind) noexcept;

/// `@ IDENTIFIER INT` — virtual memory block request.
struct Annotation {
  std::string name;
  std::uint32_t size = 0;  // 32-bit buckets
  int line = 0;
};

/// `<FIELD, VALUE, MASK>` traffic filter of a program declaration.
struct Filter {
  std::string field;
  Word value = 0;
  Word mask = 0;
  int line = 0;
};

/// `<REGISTER, VALUE, MASK>` condition inside a case block.
struct Condition {
  Reg reg = Reg::Har;
  Word value = 0;
  Word mask = 0;
  int line = 0;
};

/// Primitive argument as written; classified by the semantic checker.
struct Argument {
  enum class Kind : std::uint8_t { Field, Identifier, Register, Integer } kind;
  std::string text;  // Field / Identifier spelling
  Reg reg = Reg::Har;
  Word value = 0;
  int line = 0;
};

struct Primitive;

/// One `case(<...>) { ... }` block of a BRANCH.
struct Case {
  std::vector<Condition> conditions;
  std::vector<Primitive> body;
  int line = 0;
};

struct Primitive {
  PrimKind kind = PrimKind::Drop;
  std::vector<Argument> args;
  std::vector<Case> cases;  // BRANCH only
  int line = 0;
};

/// `program NAME (filters) { body }`.
struct ProgramDecl {
  std::string name;
  std::vector<Filter> filters;
  std::vector<Primitive> body;
  int line = 0;
};

/// A parsed source unit: annotations followed by one or more programs.
struct Unit {
  std::vector<Annotation> annotations;
  std::vector<ProgramDecl> programs;
};

}  // namespace p4runpro::lang
