#include "lang/lexer.h"

#include <cctype>
#include <string>

namespace p4runpro::lang {

namespace {

class Scanner {
 public:
  explicit Scanner(std::string_view src) : src_(src) {}

  Result<std::vector<Token>> run() {
    std::vector<Token> tokens;
    while (true) {
      if (!skip_trivia()) return Error{error_, location(), ErrorCode::ParseError};
      if (at_end()) break;
      Token tok;
      tok.line = line_;
      tok.column = column_;
      const char c = peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        if (!scan_number(tok)) return Error{error_, location(), ErrorCode::ParseError};
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        scan_identifier(tok);
      } else {
        if (!scan_punct(tok)) return Error{error_, location(), ErrorCode::ParseError};
      }
      tokens.push_back(std::move(tok));
    }
    Token end;
    end.kind = TokenKind::End;
    end.line = line_;
    end.column = column_;
    tokens.push_back(end);
    return tokens;
  }

 private:
  [[nodiscard]] bool at_end() const noexcept { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const noexcept {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() noexcept {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  [[nodiscard]] std::string location() const {
    return "line " + std::to_string(line_) + ":" + std::to_string(column_);
  }

  /// Skip whitespace and comments; false on unterminated block comment.
  bool skip_trivia() {
    while (!at_end()) {
      const char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (!at_end() && peek() != '\n') advance();
      } else if (c == '/' && peek(1) == '*') {
        advance();
        advance();
        while (!at_end() && !(peek() == '*' && peek(1) == '/')) advance();
        if (at_end()) {
          error_ = "unterminated block comment";
          return false;
        }
        advance();
        advance();
      } else {
        break;
      }
    }
    return true;
  }

  bool scan_number(Token& tok) {
    tok.kind = TokenKind::Integer;
    std::string text;
    // Collect the maximal run of digits, hex letters, '.', 'x', 'b'.
    while (!at_end()) {
      const char c = peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.') {
        text.push_back(advance());
      } else {
        break;
      }
    }
    tok.text = text;
    if (text.find('.') != std::string::npos) return parse_ipv4(text, tok);
    std::uint64_t value = 0;
    std::size_t i = 0;
    int base = 10;
    if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
      base = 16;
      i = 2;
    } else if (text.size() > 2 && text[0] == '0' && (text[1] == 'b' || text[1] == 'B')) {
      base = 2;
      i = 2;
    }
    if (i >= text.size()) {
      error_ = "malformed integer literal '" + text + "'";
      return false;
    }
    for (; i < text.size(); ++i) {
      const char c = text[i];
      int digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = c - 'A' + 10;
      } else {
        error_ = "bad digit in integer literal '" + text + "'";
        return false;
      }
      if (digit >= base) {
        error_ = "bad digit in integer literal '" + text + "'";
        return false;
      }
      value = value * static_cast<std::uint64_t>(base) + static_cast<std::uint64_t>(digit);
      if (value > 0xffffffffull) {
        error_ = "integer literal out of 32-bit range: '" + text + "'";
        return false;
      }
    }
    tok.value = static_cast<std::uint32_t>(value);
    return true;
  }

  bool parse_ipv4(const std::string& text, Token& tok) {
    std::uint32_t value = 0;
    int octets = 0;
    std::size_t i = 0;
    while (i < text.size()) {
      std::uint32_t octet = 0;
      std::size_t digits = 0;
      while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
        octet = octet * 10 + static_cast<std::uint32_t>(text[i] - '0');
        ++digits;
        ++i;
      }
      if (digits == 0 || digits > 3 || octet > 255) {
        error_ = "malformed IPv4 literal '" + text + "'";
        return false;
      }
      value = (value << 8) | octet;
      ++octets;
      if (i < text.size()) {
        if (text[i] != '.') {
          error_ = "malformed IPv4 literal '" + text + "'";
          return false;
        }
        ++i;
      }
    }
    if (octets != 4) {
      error_ = "malformed IPv4 literal '" + text + "'";
      return false;
    }
    tok.value = value;
    return true;
  }

  void scan_identifier(Token& tok) {
    tok.kind = TokenKind::Identifier;
    std::string text;
    while (!at_end()) {
      const char c = peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.') {
        text.push_back(advance());
      } else {
        break;
      }
    }
    tok.text = std::move(text);
  }

  bool scan_punct(Token& tok) {
    const char c = advance();
    switch (c) {
      case '@': tok.kind = TokenKind::At; return true;
      case '(': tok.kind = TokenKind::LParen; return true;
      case ')': tok.kind = TokenKind::RParen; return true;
      case '{': tok.kind = TokenKind::LBrace; return true;
      case '}': tok.kind = TokenKind::RBrace; return true;
      case '<': tok.kind = TokenKind::Less; return true;
      case '>': tok.kind = TokenKind::Greater; return true;
      case ',': tok.kind = TokenKind::Comma; return true;
      case ';': tok.kind = TokenKind::Semicolon; return true;
      case ':': tok.kind = TokenKind::Colon; return true;
      default:
        error_ = std::string("unexpected character '") + c + "'";
        return false;
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  std::string error_;
};

}  // namespace

Result<std::vector<Token>> lex(std::string_view source) {
  return Scanner(source).run();
}

int count_loc(std::string_view source) {
  int loc = 0;
  bool in_block_comment = false;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    const std::size_t eol = source.find('\n', pos);
    const std::string_view line =
        source.substr(pos, eol == std::string_view::npos ? source.size() - pos
                                                         : eol - pos);
    bool has_code = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (in_block_comment) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block_comment = false;
          ++i;
        }
        continue;
      }
      if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        ++i;
        continue;
      }
      if (!std::isspace(static_cast<unsigned char>(line[i]))) has_code = true;
    }
    if (has_code) ++loc;
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return loc;
}

}  // namespace p4runpro::lang
