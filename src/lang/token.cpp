#include "lang/token.h"

namespace p4runpro::lang {

const char* token_kind_name(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::Identifier: return "identifier";
    case TokenKind::Integer: return "integer";
    case TokenKind::At: return "@";
    case TokenKind::LParen: return "(";
    case TokenKind::RParen: return ")";
    case TokenKind::LBrace: return "{";
    case TokenKind::RBrace: return "}";
    case TokenKind::Less: return "<";
    case TokenKind::Greater: return ">";
    case TokenKind::Comma: return ",";
    case TokenKind::Semicolon: return ";";
    case TokenKind::Colon: return ":";
    case TokenKind::End: return "<eof>";
  }
  return "?";
}

}  // namespace p4runpro::lang
