// Token stream of the P4runpro DSL (grammar in paper Fig. 15).
#pragma once

#include <cstdint>
#include <string>

namespace p4runpro::lang {

enum class TokenKind : std::uint8_t {
  Identifier,  // program / memory / primitive / field names (may be dotted)
  Integer,     // binary (0b..), decimal, hexadecimal (0x..) or IPv4 dotted quad
  At,          // @
  LParen,
  RParen,
  LBrace,
  RBrace,
  Less,
  Greater,
  Comma,
  Semicolon,
  Colon,
  End,
};

struct Token {
  TokenKind kind = TokenKind::End;
  std::string text;          // raw spelling (identifiers)
  std::uint32_t value = 0;   // parsed value for Integer
  int line = 0;
  int column = 0;
};

[[nodiscard]] const char* token_kind_name(TokenKind kind) noexcept;

}  // namespace p4runpro::lang
