#include "lang/ast.h"

#include <array>
#include <utility>

namespace p4runpro::lang {

namespace {
constexpr std::pair<const char*, PrimKind> kPrimNames[] = {
    {"EXTRACT", PrimKind::Extract},
    {"MODIFY", PrimKind::Modify},
    {"HASH_5_TUPLE", PrimKind::Hash5Tuple},
    {"HASH", PrimKind::Hash},
    {"HASH_5_TUPLE_MEM", PrimKind::Hash5TupleMem},
    {"HASH_MEM", PrimKind::HashMem},
    {"BRANCH", PrimKind::Branch},
    {"MEMADD", PrimKind::MemAdd},
    {"MEMSUB", PrimKind::MemSub},
    {"MEMAND", PrimKind::MemAnd},
    {"MEMOR", PrimKind::MemOr},
    {"MEMREAD", PrimKind::MemRead},
    {"MEMWRITE", PrimKind::MemWrite},
    {"MEMMAX", PrimKind::MemMax},
    {"LOADI", PrimKind::Loadi},
    {"ADD", PrimKind::Add},
    {"AND", PrimKind::And},
    {"OR", PrimKind::Or},
    {"MAX", PrimKind::Max},
    {"MIN", PrimKind::Min},
    {"XOR", PrimKind::Xor},
    {"MOVE", PrimKind::Move},
    {"NOT", PrimKind::Not},
    {"SUB", PrimKind::Sub},
    {"EQUAL", PrimKind::Equal},
    {"SGT", PrimKind::Sgt},
    {"SLT", PrimKind::Slt},
    {"ADDI", PrimKind::Addi},
    {"ANDI", PrimKind::Andi},
    {"XORI", PrimKind::Xori},
    {"SUBI", PrimKind::Subi},
    {"FORWARD", PrimKind::Forward},
    {"MULTICAST", PrimKind::Multicast},
    {"DROP", PrimKind::Drop},
    {"RETURN", PrimKind::Return},
    {"REPORT", PrimKind::Report},
};
}  // namespace

const char* prim_name(PrimKind kind) noexcept {
  for (const auto& [name, k] : kPrimNames) {
    if (k == kind) return name;
  }
  return "?";
}

std::optional<PrimKind> prim_from_name(const std::string& name) noexcept {
  for (const auto& [n, k] : kPrimNames) {
    if (name == n) return k;
  }
  return std::nullopt;
}

bool is_pseudo(PrimKind kind) noexcept {
  switch (kind) {
    case PrimKind::Move:
    case PrimKind::Not:
    case PrimKind::Sub:
    case PrimKind::Equal:
    case PrimKind::Sgt:
    case PrimKind::Slt:
    case PrimKind::Addi:
    case PrimKind::Andi:
    case PrimKind::Xori:
    case PrimKind::Subi:
      return true;
    default:
      return false;
  }
}

}  // namespace p4runpro::lang
