#include "dataplane/recirc_block.h"

#include <array>

namespace p4runpro::dp {

RecircBlock::RecircBlock(std::uint32_t capacity) : table_(2, capacity) {}

void RecircBlock::process(rmt::Phv& phv) {
  if (phv.program_id == 0) return;
  const auto& table = read_table();
  // Single-pass deployments leave this table empty: skip the lookup.
  if (table.size() == 0) return;
  const std::array<Word, 2> fields = {static_cast<Word>(phv.program_id),
                                      static_cast<Word>(phv.recirc_id)};
  // Bound (snapshot) lookups drop probe accounting: the snapshot table is
  // shared across shards and its mutable stats member must stay untouched.
  const bool hit = bound_ != nullptr ? table.lookup(fields, nullptr) != nullptr
                                     : table.lookup(fields) != nullptr;
  if (hit) {
    phv.recirculate = true;
    if (phv.trace != nullptr) {
      phv.trace->push_back("recirc: another round (r" +
                           std::to_string(phv.recirc_id + 1) + ")");
    }
    if (phv.trace_events != nullptr) {
      rmt::TraceEvent event;
      event.block = rmt::TraceEvent::Block::Recirc;
      event.round = phv.recirc_id;
      event.op = "recirculate";
      event.value = static_cast<Word>(phv.recirc_id + 1);
      phv.trace_events->push_back(std::move(event));
    }
  }
}

Result<std::vector<rmt::EntryHandle>> RecircBlock::install(ProgramId program,
                                                           int rounds) {
  std::vector<rmt::EntryHandle> handles;
  for (int round = 0; round + 1 < rounds; ++round) {
    auto result = table_.insert(
        {rmt::TernaryKey::exact(program), rmt::TernaryKey::exact(static_cast<Word>(round))},
        /*priority=*/0, true);
    if (!result.ok()) {
      remove(handles);
      return result.error();
    }
    handles.push_back(result.value());
  }
  return handles;
}

void RecircBlock::remove(const std::vector<rmt::EntryHandle>& handles) {
  for (auto h : handles) table_.erase(h);
}

}  // namespace p4runpro::dp
