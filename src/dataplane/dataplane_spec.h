// Compile-time geometry of the P4runpro data plane (paper §5): the numbers
// an operator fixes when provisioning the switch once.
#pragma once

#include <cstdint>

namespace p4runpro::dp {

struct DataplaneSpec {
  /// Physical RPBs in the ingress pipeline (stage 0 holds the
  /// initialization block, the last ingress stage the recirculation block).
  int ingress_rpbs = 10;
  /// Physical RPBs in the egress pipeline.
  int egress_rpbs = 12;
  /// 32-bit buckets of stateful memory attached to each RPB.
  std::uint32_t memory_per_rpb = 65536;
  /// Ternary table entries per RPB.
  std::uint32_t entries_per_rpb = 2048;
  /// Maximum recirculation iteration number R accepted by the compiler.
  int max_recirculations = 1;
  /// Hash output width of the per-stage hash units before the mask step.
  int hash_output_bits = 16;

  /// Total physical RPBs (M in the allocation model).
  [[nodiscard]] int total_rpbs() const noexcept { return ingress_rpbs + egress_rpbs; }
  /// Logical RPB count M * (R + 1).
  [[nodiscard]] int logical_rpbs() const noexcept {
    return total_rpbs() * (max_recirculations + 1);
  }
};

/// Logical -> physical RPB mapping helpers. Logical RPBs are numbered from
/// 1 as in the paper's model: x in [1, M*(R+1)], physical = ((x-1) mod M)+1,
/// recirculation round = (x-1) / M.
[[nodiscard]] constexpr int physical_rpb(int logical, int total_rpbs) noexcept {
  return (logical - 1) % total_rpbs + 1;
}
[[nodiscard]] constexpr int recirc_round(int logical, int total_rpbs) noexcept {
  return (logical - 1) / total_rpbs;
}
[[nodiscard]] constexpr bool is_ingress_rpb(int physical, int ingress_rpbs) noexcept {
  return physical >= 1 && physical <= ingress_rpbs;
}

}  // namespace p4runpro::dp
