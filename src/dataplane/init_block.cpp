#include "dataplane/init_block.h"

#include <algorithm>

#include "rmt/phv.h"

namespace p4runpro::dp {

namespace {
using rmt::FieldId;

/// Headers required to evaluate a filter on `field`.
enum HeaderNeed : std::uint8_t { kNeedNone = 0, kNeedIpv4 = 1, kNeedTcp = 2, kNeedUdp = 4 };

[[nodiscard]] std::uint8_t header_need(FieldId field) noexcept {
  switch (field) {
    case FieldId::Ipv4Src:
    case FieldId::Ipv4Dst:
    case FieldId::Ipv4Proto:
      return kNeedIpv4;
    case FieldId::TcpSrcPort:
    case FieldId::TcpDstPort:
      return kNeedIpv4 | kNeedTcp;
    case FieldId::UdpSrcPort:
    case FieldId::UdpDstPort:
      return kNeedIpv4 | kNeedUdp;
    default:
      return kNeedNone;
  }
}
}  // namespace

std::optional<int> filter_key_slot(rmt::FieldId field) noexcept {
  switch (field) {
    case FieldId::MetaIngressPort: return kFilterIngressPort;
    case FieldId::Ipv4Src: return kFilterIpv4Src;
    case FieldId::Ipv4Dst: return kFilterIpv4Dst;
    case FieldId::Ipv4Proto: return kFilterIpv4Proto;
    case FieldId::TcpSrcPort:
    case FieldId::UdpSrcPort:
      return kFilterL4Src;
    case FieldId::TcpDstPort:
    case FieldId::UdpDstPort:
      return kFilterL4Dst;
    case FieldId::EthType: return kFilterEthType;
    default:
      return std::nullopt;
  }
}

std::vector<ParsePath> compatible_paths(const std::vector<FilterTuple>& filters) {
  std::uint8_t need = kNeedNone;
  for (const auto& f : filters) need |= header_need(f.field);

  std::vector<ParsePath> paths;
  auto consider = [&](ParsePath p, std::uint8_t provides) {
    if ((need & ~provides) == 0) paths.push_back(p);
  };
  consider(ParsePath::Eth, kNeedNone);
  consider(ParsePath::Ipv4, kNeedIpv4);
  consider(ParsePath::Tcp, kNeedIpv4 | kNeedTcp);
  consider(ParsePath::Udp, kNeedIpv4 | kNeedUdp);
  consider(ParsePath::App, kNeedIpv4 | kNeedUdp);
  return paths;
}

InitBlock::InitBlock(std::uint32_t per_table_capacity)
    : tables_{FilterTable(kFilterKeyWidth, per_table_capacity),
              FilterTable(kFilterKeyWidth, per_table_capacity),
              FilterTable(kFilterKeyWidth, per_table_capacity),
              FilterTable(kFilterKeyWidth, per_table_capacity),
              FilterTable(kFilterKeyWidth, per_table_capacity)},
      // Every installed program occupies at least one filter entry, and the
      // controller recycles ids of revoked programs, so the largest id ever
      // handed out is bounded by the total entry capacity.
      claimed_(static_cast<std::size_t>(kNumParsePaths) * per_table_capacity + 2) {}

ParsePath InitBlock::path_of(const rmt::Phv& phv) noexcept {
  if (phv.parse_bitmap & rmt::kParseApp) return ParsePath::App;
  if (phv.parse_bitmap & rmt::kParseUdp) return ParsePath::Udp;
  if (phv.parse_bitmap & rmt::kParseTcp) return ParsePath::Tcp;
  if (phv.parse_bitmap & rmt::kParseIpv4) return ParsePath::Ipv4;
  return ParsePath::Eth;
}

void InitBlock::process(rmt::Phv& phv) {
  // Recirculated packets carry their program state in the P4runpro header;
  // they bypass filtering.
  if (phv.recirc_id > 0) return;

  const ParsePath path = path_of(phv);
  const rmt::Packet& pkt = phv.pkt;
  const Word l4_src = pkt.tcp   ? pkt.tcp->src_port
                      : pkt.udp ? pkt.udp->src_port
                                : 0;
  const Word l4_dst = pkt.tcp   ? pkt.tcp->dst_port
                      : pkt.udp ? pkt.udp->dst_port
                                : 0;
  const std::array<Word, kFilterKeyWidth> fields = {
      pkt.ingress_port,
      pkt.ipv4 ? pkt.ipv4->src : 0,
      pkt.ipv4 ? pkt.ipv4->dst : 0,
      pkt.ipv4 ? pkt.ipv4->proto : 0u,
      l4_src,
      l4_dst,
      pkt.eth.ether_type};
  // Bound (snapshot) lookups use a null stats sink: the snapshot tables
  // are shared across shards and their probe counters must stay untouched.
  const ProgramId* program =
      bound_ != nullptr
          ? (*bound_)[static_cast<std::size_t>(path)].lookup(fields, nullptr)
          : tables_[static_cast<std::size_t>(path)].lookup(fields);
  if (program != nullptr) {
    phv.program_id = *program;
    if (*program < claimed_.size()) {
      claimed_[*program].fetch_add(1, std::memory_order_relaxed);
    }
    if (phv.trace != nullptr) {
      phv.trace->push_back("init: claimed by program " + std::to_string(*program));
    }
    if (phv.trace_events != nullptr) {
      rmt::TraceEvent event;
      event.block = rmt::TraceEvent::Block::Init;
      event.round = phv.recirc_id;
      event.op = "claim";
      event.value = *program;
      phv.trace_events->push_back(std::move(event));
    }
  }
}

Result<std::vector<InitBlock::InstalledFilter>> InitBlock::install(
    ProgramId program, const std::vector<FilterTuple>& filters, int priority) {
  std::vector<rmt::TernaryKey> keys(kFilterKeyWidth, rmt::TernaryKey::any());
  for (const auto& f : filters) {
    const auto slot = filter_key_slot(f.field);
    if (!slot) {
      return Error{"field cannot be used in a flow filter: " +
                       std::string(rmt::field_name(f.field)),
                   "InitBlock", ErrorCode::SemanticError};
    }
    keys[static_cast<std::size_t>(*slot)] = rmt::TernaryKey{f.value, f.mask};
  }

  std::vector<InstalledFilter> installed;
  for (ParsePath path : compatible_paths(filters)) {
    auto result =
        tables_[static_cast<std::size_t>(path)].insert(keys, priority, program);
    if (!result.ok()) {
      remove(installed);  // roll back partial install
      return result.error();
    }
    installed.push_back({path, result.value()});
  }
  return installed;
}

void InitBlock::remove(const std::vector<InstalledFilter>& handles) {
  for (const auto& h : handles) {
    tables_[static_cast<std::size_t>(h.path)].erase(h.handle);
  }
}

const FilterTable& InitBlock::table(ParsePath path) const {
  return tables_[static_cast<std::size_t>(path)];
}

std::uint64_t InitBlock::claimed_packets(ProgramId program) const {
  return claimed_.size() <= program
             ? 0
             : claimed_[program].load(std::memory_order_relaxed);
}

void InitBlock::clear_counter(ProgramId program) {
  if (claimed_.size() > program) {
    claimed_[program].store(0, std::memory_order_relaxed);
  }
}

std::size_t InitBlock::total_entries() const noexcept {
  std::size_t n = 0;
  for (const auto& t : tables_) n += t.size();
  return n;
}

}  // namespace p4runpro::dp
