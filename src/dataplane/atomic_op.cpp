#include "dataplane/atomic_op.h"

#include <cstdio>

namespace p4runpro::dp {

const char* op_kind_name(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::Nop: return "NOP";
    case OpKind::Extract: return "EXTRACT";
    case OpKind::Modify: return "MODIFY";
    case OpKind::Hash5Tuple: return "HASH_5_TUPLE";
    case OpKind::HashHar: return "HASH";
    case OpKind::Hash5TupleMem: return "HASH_5_TUPLE_MEM";
    case OpKind::HashHarMem: return "HASH_MEM";
    case OpKind::Branch: return "BRANCH";
    case OpKind::Offset: return "OFFSET";
    case OpKind::Mem: return "MEM";
    case OpKind::Loadi: return "LOADI";
    case OpKind::Add: return "ADD";
    case OpKind::And: return "AND";
    case OpKind::Or: return "OR";
    case OpKind::Max: return "MAX";
    case OpKind::Min: return "MIN";
    case OpKind::Xor: return "XOR";
    case OpKind::Backup: return "BACKUP";
    case OpKind::Restore: return "RESTORE";
    case OpKind::Forward: return "FORWARD";
    case OpKind::Drop: return "DROP";
    case OpKind::Return: return "RETURN";
    case OpKind::Report: return "REPORT";
    case OpKind::Multicast: return "MULTICAST";
  }
  return "?";
}

std::string AtomicOp::str() const {
  char buf[96];
  switch (kind) {
    case OpKind::Extract:
    case OpKind::Modify:
      std::snprintf(buf, sizeof buf, "%s(%s, %s)", op_kind_name(kind),
                    std::string(rmt::field_name(field)).c_str(), to_string(reg0));
      break;
    case OpKind::Loadi:
      std::snprintf(buf, sizeof buf, "LOADI(%s, %u)", to_string(reg0), imm);
      break;
    case OpKind::Offset:
      std::snprintf(buf, sizeof buf, "OFFSET(+%u)", imm);
      break;
    case OpKind::Forward:
      std::snprintf(buf, sizeof buf, "FORWARD(%u)", imm);
      break;
    case OpKind::Multicast:
      std::snprintf(buf, sizeof buf, "MULTICAST(%u)", imm);
      break;
    case OpKind::Add:
    case OpKind::And:
    case OpKind::Or:
    case OpKind::Max:
    case OpKind::Min:
    case OpKind::Xor:
      std::snprintf(buf, sizeof buf, "%s(%s, %s)", op_kind_name(kind),
                    to_string(reg0), to_string(reg1));
      break;
    case OpKind::Mem:
      std::snprintf(buf, sizeof buf, "MEM(salu=%d)", static_cast<int>(salu));
      break;
    case OpKind::Hash5TupleMem:
    case OpKind::HashHarMem:
      std::snprintf(buf, sizeof buf, "%s(mask=0x%x)", op_kind_name(kind), mask);
      break;
    default:
      std::snprintf(buf, sizeof buf, "%s", op_kind_name(kind));
      break;
  }
  return buf;
}

AtomicOp AtomicOp::extract(rmt::FieldId f, Reg r) {
  AtomicOp op;
  op.kind = OpKind::Extract;
  op.field = f;
  op.reg0 = r;
  return op;
}

AtomicOp AtomicOp::modify(rmt::FieldId f, Reg r) {
  AtomicOp op;
  op.kind = OpKind::Modify;
  op.field = f;
  op.reg0 = r;
  return op;
}

AtomicOp AtomicOp::hash_5_tuple() {
  AtomicOp op;
  op.kind = OpKind::Hash5Tuple;
  return op;
}

AtomicOp AtomicOp::hash_har() {
  AtomicOp op;
  op.kind = OpKind::HashHar;
  return op;
}

AtomicOp AtomicOp::hash_5_tuple_mem(Word mask) {
  AtomicOp op;
  op.kind = OpKind::Hash5TupleMem;
  op.mask = mask;
  return op;
}

AtomicOp AtomicOp::hash_har_mem(Word mask) {
  AtomicOp op;
  op.kind = OpKind::HashHarMem;
  op.mask = mask;
  return op;
}

AtomicOp AtomicOp::branch() {
  AtomicOp op;
  op.kind = OpKind::Branch;
  return op;
}

AtomicOp AtomicOp::offset(Word phys_base) {
  AtomicOp op;
  op.kind = OpKind::Offset;
  op.imm = phys_base;
  return op;
}

AtomicOp AtomicOp::mem(rmt::SaluOp salu) {
  AtomicOp op;
  op.kind = OpKind::Mem;
  op.salu = salu;
  return op;
}

AtomicOp AtomicOp::loadi(Reg r, Word imm) {
  AtomicOp op;
  op.kind = OpKind::Loadi;
  op.reg0 = r;
  op.imm = imm;
  return op;
}

AtomicOp AtomicOp::alu(OpKind kind, Reg r0, Reg r1) {
  AtomicOp op;
  op.kind = kind;
  op.reg0 = r0;
  op.reg1 = r1;
  return op;
}

AtomicOp AtomicOp::backup(Reg r) {
  AtomicOp op;
  op.kind = OpKind::Backup;
  op.reg0 = r;
  return op;
}

AtomicOp AtomicOp::restore(Reg r) {
  AtomicOp op;
  op.kind = OpKind::Restore;
  op.reg0 = r;
  return op;
}

AtomicOp AtomicOp::forward(Port port) {
  AtomicOp op;
  op.kind = OpKind::Forward;
  op.imm = port;
  return op;
}

AtomicOp AtomicOp::multicast(Word group) {
  AtomicOp op;
  op.kind = OpKind::Multicast;
  op.imm = group;
  return op;
}

AtomicOp AtomicOp::drop() {
  AtomicOp op;
  op.kind = OpKind::Drop;
  return op;
}

AtomicOp AtomicOp::ret() {
  AtomicOp op;
  op.kind = OpKind::Return;
  return op;
}

AtomicOp AtomicOp::report() {
  AtomicOp op;
  op.kind = OpKind::Report;
  return op;
}

bool is_forwarding(OpKind kind) noexcept {
  return kind == OpKind::Forward || kind == OpKind::Drop ||
         kind == OpKind::Return || kind == OpKind::Report ||
         kind == OpKind::Multicast;
}

bool is_memory(OpKind kind) noexcept { return kind == OpKind::Mem; }

bool is_hash(OpKind kind) noexcept {
  return kind == OpKind::Hash5Tuple || kind == OpKind::HashHar ||
         kind == OpKind::Hash5TupleMem || kind == OpKind::HashHarMem;
}

}  // namespace p4runpro::dp
