// Initialization block: first ingress stage. One filtering table per
// parsing path (paper §4.1.1/§5); the only action is assigning the unique
// program ID that all later blocks key on — this is what gives P4runpro
// flow/port-granular program isolation.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "rmt/packet.h"
#include "rmt/pipeline.h"
#include "rmt/tables.h"

namespace p4runpro::dp {

/// The parsing paths of the provisioned parser (K = 5 filtering tables).
enum class ParsePath : std::uint8_t { Eth = 0, Ipv4 = 1, Tcp = 2, Udp = 3, App = 4 };
inline constexpr int kNumParsePaths = 5;

/// Canonical key layout of every filtering table.
enum FilterKeyField : int {
  kFilterIngressPort = 0,
  kFilterIpv4Src = 1,
  kFilterIpv4Dst = 2,
  kFilterIpv4Proto = 3,
  kFilterL4Src = 4,
  kFilterL4Dst = 5,
  kFilterEthType = 6,
};
inline constexpr int kFilterKeyWidth = 7;

/// Filtering-table type: key width fixed at compile time so entries keep
/// their keys inline (the filter scan is the hot path of unclaimed traffic).
using FilterTable = rmt::TernaryTable<ProgramId, kFilterKeyWidth>;

/// One `<field, value, mask>` filter tuple from a program declaration.
struct FilterTuple {
  rmt::FieldId field;
  Word value;
  Word mask;
};

/// Map a DSL field to its filtering-table key slot; nullopt if the field
/// cannot be filtered on (semantic error).
[[nodiscard]] std::optional<int> filter_key_slot(rmt::FieldId field) noexcept;

/// Parsing paths on which a filter with these tuples can match (determined
/// by the headers the filtered fields require).
[[nodiscard]] std::vector<ParsePath> compatible_paths(
    const std::vector<FilterTuple>& filters);

class InitBlock final : public rmt::PipelineStage {
 public:
  explicit InitBlock(std::uint32_t per_table_capacity);

  void process(rmt::Phv& phv) override;

  /// Install one program's filter into every compatible path table.
  /// Returns the handles (pairs of path + entry) for later removal.
  struct InstalledFilter {
    ParsePath path;
    rmt::EntryHandle handle;
  };
  Result<std::vector<InstalledFilter>> install(ProgramId program,
                                               const std::vector<FilterTuple>& filters,
                                               int priority);
  void remove(const std::vector<InstalledFilter>& handles);

  [[nodiscard]] const FilterTable& table(ParsePath path) const;
  [[nodiscard]] std::size_t total_entries() const noexcept;

  /// Redirect claim lookups to a frozen snapshot's filter tables (nullptr =
  /// back to the own/master tables). Shard instances are re-bound at every
  /// batch start; the per-program claim counters stay on THIS instance
  /// (shard-local mutable state), only the match tables are shared.
  void bind_tables(const std::array<FilterTable, kNumParsePaths>* tables) noexcept {
    bound_ = tables;
  }

  /// Which path a parsed packet takes (deepest parsed header wins).
  [[nodiscard]] static ParsePath path_of(const rmt::Phv& phv) noexcept;

  /// Packets claimed by a program since it was installed (per-program
  /// traffic counters of the monitoring path).
  [[nodiscard]] std::uint64_t claimed_packets(ProgramId program) const;
  void clear_counter(ProgramId program);

 private:
  std::array<FilterTable, kNumParsePaths> tables_;
  const std::array<FilterTable, kNumParsePaths>* bound_ = nullptr;
  /// Per-program claim counters, indexed by program id. Fixed capacity
  /// (program ids are recycled, so the max live id is bounded by the total
  /// filter-entry capacity) and relaxed atomics: they model pipe-local
  /// hardware registers, where a control-plane clear racing the owning
  /// pipe's increment resolves per-word without tearing. Only the owning
  /// shard's traffic increments a given instance's counters.
  std::vector<std::atomic<std::uint64_t>> claimed_;
};

}  // namespace p4runpro::dp
