#include "dataplane/snapshot_hub.h"

#include <cassert>
#include <thread>

#include "dataplane/table_snapshot.h"
#include "obs/telemetry.h"

namespace p4runpro::dp {

SnapshotHub::SnapshotHub(int readers) : slots_(static_cast<std::size_t>(readers)) {
  assert(readers >= 1);
}

SnapshotHub::~SnapshotHub() {
  synchronize();
  delete current_.load(std::memory_order_seq_cst);
  if (telemetry_ != nullptr) telemetry_->metrics.unregister_probes(this);
}

SnapshotHub::ReadGuard::~ReadGuard() {
  if (hub_ != nullptr) hub_->release(slot_);
}

SnapshotHub::ReadGuard SnapshotHub::acquire(int reader) noexcept {
  assert(reader >= 0 && reader < readers());
  auto& slot = slots_[static_cast<std::size_t>(reader)].epoch;
  assert(slot.load(std::memory_order_relaxed) == 0 &&
         "one in-flight batch per shard: previous guard still alive");
  // Announce before loading the pointer: a writer that retires the old
  // snapshot after our announcement sees our slot <= its retire epoch and
  // defers the free; a writer that swapped before our pointer load hands
  // us the new snapshot, so the announcement is at worst conservative.
  slot.store(epoch_.load(std::memory_order_seq_cst), std::memory_order_seq_cst);
  const TableSnapshot* snap = current_.load(std::memory_order_seq_cst);
  assert(snap != nullptr && "acquire() before the first publish()");
  acquires_.fetch_add(1, std::memory_order_relaxed);
  return ReadGuard(this, reader, snap);
}

void SnapshotHub::release(int slot) noexcept {
  slots_[static_cast<std::size_t>(slot)].epoch.store(0, std::memory_order_seq_cst);
}

void SnapshotHub::publish(std::unique_ptr<TableSnapshot> next) {
  assert(next != nullptr);
  // Single writer (control-plane session lock held): the plain read-bump
  // of epoch_ below cannot race another publish.
  const std::uint64_t prior = epoch_.load(std::memory_order_seq_cst);
  next->epoch = prior + 1;
  const TableSnapshot* old = current_.exchange(next.release(),
                                               std::memory_order_seq_cst);
  epoch_.store(prior + 1, std::memory_order_seq_cst);
  if (old != nullptr) {
    std::lock_guard<std::mutex> lock(retired_mu_);
    // Any reader that obtained `old` announced an epoch <= `prior` before
    // our exchange (seq_cst total order), so "slot == 0 or slot > prior"
    // proves the grace period elapsed.
    retired_.push_back(Retired{std::unique_ptr<const TableSnapshot>(old), prior});
  }
  try_reclaim();
}

bool SnapshotHub::drained(std::uint64_t retire_epoch) const noexcept {
  for (const ReaderSlot& slot : slots_) {
    const std::uint64_t announced = slot.epoch.load(std::memory_order_seq_cst);
    if (announced != 0 && announced <= retire_epoch) return false;
  }
  return true;
}

std::size_t SnapshotHub::try_reclaim() {
  std::lock_guard<std::mutex> lock(retired_mu_);
  std::size_t freed = 0;
  for (std::size_t i = 0; i < retired_.size();) {
    if (drained(retired_[i].retire_epoch)) {
      retired_.erase(retired_.begin() + static_cast<std::ptrdiff_t>(i));
      ++freed;
    } else {
      ++i;
    }
  }
  if (freed != 0) reclaimed_.fetch_add(freed, std::memory_order_relaxed);
  return freed;
}

void SnapshotHub::synchronize() {
  for (;;) {
    try_reclaim();
    {
      std::lock_guard<std::mutex> lock(retired_mu_);
      if (retired_.empty()) return;
    }
    std::this_thread::yield();
  }
}

std::size_t SnapshotHub::retired_pending() const {
  std::lock_guard<std::mutex> lock(retired_mu_);
  return retired_.size();
}

void SnapshotHub::attach_telemetry(obs::Telemetry* telemetry) {
  if (telemetry_ != nullptr) telemetry_->metrics.unregister_probes(this);
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) return;
  auto& m = telemetry_->metrics;
  m.register_probe("rmt.snapshot.epoch", this,
                   [this] { return static_cast<double>(epoch()); });
  m.register_probe("rmt.snapshot.retired_pending", this,
                   [this] { return static_cast<double>(retired_pending()); });
  m.register_probe("rmt.snapshot.reclaimed", this,
                   [this] { return static_cast<double>(reclaimed()); });
  m.register_probe("rmt.snapshot.acquires", this,
                   [this] { return static_cast<double>(acquires()); });
}

}  // namespace p4runpro::dp
