// The provisioned P4runpro data plane: wires the initialization block, the
// ingress/egress RPBs and the recirculation block into an RMT pipeline
// (Fig. 1). Provisioned once; afterwards only table entries change.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "dataplane/dataplane_spec.h"
#include "dataplane/init_block.h"
#include "dataplane/recirc_block.h"
#include "dataplane/rpb.h"
#include "dataplane/rpb_chain.h"
#include "dataplane/write_op.h"
#include "rmt/pipeline.h"

namespace p4runpro::dp {

class RunproDataplane {
 public:
  RunproDataplane(DataplaneSpec spec, rmt::ParserConfig parser_config);

  /// Run one packet through the pipeline (including recirculations).
  rmt::PipelineResult inject(const rmt::Packet& pkt) { return pipeline_.inject(pkt); }

  /// Run a batch of packets and return aggregate results (the data-plane
  /// fast path; see rmt::Pipeline::inject_batch).
  rmt::Pipeline::BatchResult inject_batch(std::span<const rmt::Packet> pkts) {
    return pipeline_.inject_batch(pkts);
  }

  [[nodiscard]] const DataplaneSpec& spec() const noexcept { return spec_; }

  /// Physical RPB access, 1-based id in [1, total_rpbs()].
  [[nodiscard]] Rpb& rpb(int physical_id);
  [[nodiscard]] const Rpb& rpb(int physical_id) const;

  /// Apply one declarative write op and return its exact inverse: the op
  /// that, applied later, undoes this one (Add -> Del with the handles
  /// filled in, Del -> Add, memory writes -> RestoreMemRange carrying the
  /// overwritten words). The returned inverse is what the update engine
  /// stacks into its rollback journal; applying the journal in reverse
  /// order restores a byte-identical dataplane.
  Result<WriteOp> apply(const WriteOp& op);

  /// Apply a journal (inverse) op during rollback. Asserts success — an
  /// inverse op re-establishes state that was just present, so it cannot
  /// legitimately fail. Returns the re-created handles' op (the inverse of
  /// the inverse) so callers restoring an InstalledProgram after a failed
  /// revoke can pick up the fresh handles.
  WriteOp undo(const WriteOp& inverse);

  [[nodiscard]] InitBlock& init_block() noexcept { return *init_; }
  [[nodiscard]] RecircBlock& recirc_block() noexcept { return *recirc_; }
  [[nodiscard]] rmt::Pipeline& pipeline() noexcept { return pipeline_; }
  [[nodiscard]] const rmt::Pipeline& pipeline() const noexcept { return pipeline_; }

 private:
  DataplaneSpec spec_;
  rmt::Pipeline pipeline_;
  std::shared_ptr<InitBlock> init_;
  std::vector<std::shared_ptr<Rpb>> rpbs_;  // index i -> physical id i+1
  std::shared_ptr<RecircBlock> recirc_;
};

}  // namespace p4runpro::dp
