// The provisioned P4runpro data plane: wires the initialization block, the
// ingress/egress RPBs and the recirculation block into an RMT pipeline
// (Fig. 1). Provisioned once; afterwards only table entries change.
//
// Sharded multi-pipe mode (off by default): enable_sharding(N) models an
// N-pipe switch. Each shard is a full extra pipeline (own register memory,
// match caches, ports, claim counters — the hardware's pipe-local state)
// whose match tables are re-bound at every batch start to the current
// immutable TableSnapshot published through the SnapshotHub. The master
// blocks stay the control plane's mutable copy: apply/undo and the rollback
// journal keep operating on them byte-identically, and traffic only sees a
// mutation once note_table_update() publishes the next snapshot (pointer
// swap + epoch grace period; a rolled-back operation never publishes, so
// shards keep matching the last good state). See docs/ARCHITECTURE.md
// "Snapshot data plane".
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "dataplane/dataplane_spec.h"
#include "dataplane/init_block.h"
#include "dataplane/recirc_block.h"
#include "dataplane/rpb.h"
#include "dataplane/rpb_chain.h"
#include "dataplane/snapshot_hub.h"
#include "dataplane/table_snapshot.h"
#include "dataplane/write_op.h"
#include "rmt/pipeline.h"

namespace p4runpro::obs {
struct Telemetry;
}

namespace p4runpro::dp {

class RunproDataplane {
 public:
  RunproDataplane(DataplaneSpec spec, rmt::ParserConfig parser_config);

  /// Run one packet through the pipeline (including recirculations).
  rmt::PipelineResult inject(const rmt::Packet& pkt) { return pipeline_.inject(pkt); }

  /// Run a batch of packets and return aggregate results (the data-plane
  /// fast path; see rmt::Pipeline::inject_batch).
  rmt::Pipeline::BatchResult inject_batch(std::span<const rmt::Packet> pkts) {
    return pipeline_.inject_batch(pkts);
  }

  [[nodiscard]] const DataplaneSpec& spec() const noexcept { return spec_; }

  /// Physical RPB access, 1-based id in [1, total_rpbs()].
  [[nodiscard]] Rpb& rpb(int physical_id);
  [[nodiscard]] const Rpb& rpb(int physical_id) const;

  /// Apply one declarative write op and return its exact inverse: the op
  /// that, applied later, undoes this one (Add -> Del with the handles
  /// filled in, Del -> Add, memory writes -> RestoreMemRange carrying the
  /// overwritten words). The returned inverse is what the update engine
  /// stacks into its rollback journal; applying the journal in reverse
  /// order restores a byte-identical dataplane. Memory ops additionally
  /// broadcast to every shard's pipe-local register memory (the hardware
  /// writes registers in all pipes); the inverse captures MASTER bytes, so
  /// a rollback restores control-written values everywhere — control wins
  /// any race with in-flight shard SALU traffic, per 32-bit word.
  Result<WriteOp> apply(const WriteOp& op);

  /// Apply a journal (inverse) op during rollback. Asserts success — an
  /// inverse op re-establishes state that was just present, so it cannot
  /// legitimately fail. Returns the re-created handles' op (the inverse of
  /// the inverse) so callers restoring an InstalledProgram after a failed
  /// revoke can pick up the fresh handles.
  WriteOp undo(const WriteOp& inverse);

  [[nodiscard]] InitBlock& init_block() noexcept { return *init_; }
  [[nodiscard]] RecircBlock& recirc_block() noexcept { return *recirc_; }
  [[nodiscard]] rmt::Pipeline& pipeline() noexcept { return pipeline_; }
  [[nodiscard]] const rmt::Pipeline& pipeline() const noexcept { return pipeline_; }

  // --- sharded multi-pipe mode -------------------------------------------

  /// Provision `shards` extra pipes and publish the initial snapshot of the
  /// current master tables. Must be called from the control thread with no
  /// shard traffic in flight; qdepth, CPU-queue capacity and multicast
  /// groups are copied from the master pipeline at this moment. Calling it
  /// again re-provisions from scratch (all pipe-local state resets).
  void enable_sharding(int shards);

  /// Quiesce (grace-period drain) and tear the shards down. No-op when
  /// sharding is off. Callers must have stopped the shard workers first.
  void disable_sharding();

  [[nodiscard]] bool sharded() const noexcept { return hub_ != nullptr; }
  [[nodiscard]] int shard_count() const noexcept {
    return static_cast<int>(shards_.size());
  }

  /// Run one batch on shard `shard` against the snapshot current at batch
  /// start — the lock-free multi-pipe match path. Each shard supports ONE
  /// in-flight batch at a time (distinct shards run fully concurrently,
  /// and concurrently with control-plane commits). The result carries the
  /// exact snapshot boundary: epoch, table trace and generation of the one
  /// snapshot every packet of this batch matched against.
  rmt::Pipeline::BatchResult inject_batch_on(int shard,
                                             std::span<const rmt::Packet> pkts);

  /// Record that a control operation just mutated the master tables: bumps
  /// the master pipeline's generation/trace (as before) and, when sharded,
  /// publishes the next snapshot. Called by the update engine after each
  /// successful install/remove; rollback paths never call it, so a faulted
  /// operation is invisible to shard traffic.
  void note_table_update(std::uint64_t trace);

  /// Packets claimed by `program` across the master pipe and every shard
  /// (claim counters are pipe-local). Only exact while no shard batch is
  /// in flight (the controller's locked+quiesced query path).
  [[nodiscard]] std::uint64_t claimed_packets(ProgramId program) const;
  void clear_claim_counter(ProgramId program);

  /// Snapshot hub (null when sharding is off). Exposed for tests and for
  /// telemetry-driven drains; traffic goes through inject_batch_on().
  [[nodiscard]] SnapshotHub* snapshot_hub() noexcept { return hub_.get(); }

  /// Shard-local views (valid while sharding is enabled).
  [[nodiscard]] rmt::Pipeline& shard_pipeline(int shard);
  [[nodiscard]] const InitBlock& shard_init(int shard) const;

  /// One bundle for the whole data plane: master pipeline probes plus,
  /// when sharding is enabled (now or later), the hub's rmt.snapshot.*
  /// probes.
  void attach_telemetry(obs::Telemetry* telemetry);

 private:
  /// One hardware pipe: a full pipeline with its own blocks. The blocks'
  /// mutable state (register memory, claim counters, match caches, port
  /// counters) is pipe-local; their match tables are bound per batch to
  /// the acquired snapshot and never consulted unbound.
  struct PipeShard {
    PipeShard(const DataplaneSpec& spec, rmt::ParserConfig parser_config);
    void bind(const TableSnapshot& snap);

    rmt::Pipeline pipeline;
    std::shared_ptr<InitBlock> init;
    std::vector<std::shared_ptr<Rpb>> rpbs;
    std::shared_ptr<RecircBlock> recirc;
  };

  void publish_snapshot();

  DataplaneSpec spec_;
  rmt::ParserConfig parser_config_;  ///< kept for shard construction
  rmt::Pipeline pipeline_;
  std::shared_ptr<InitBlock> init_;
  std::vector<std::shared_ptr<Rpb>> rpbs_;  // index i -> physical id i+1
  std::shared_ptr<RecircBlock> recirc_;

  std::unique_ptr<SnapshotHub> hub_;  ///< non-null iff sharded
  std::vector<std::unique_ptr<PipeShard>> shards_;
  obs::Telemetry* telemetry_ = nullptr;
};

}  // namespace p4runpro::dp
