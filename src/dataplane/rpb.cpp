#include "dataplane/rpb.h"

#include <array>
#include <cassert>

namespace p4runpro::dp {

namespace {
constexpr rmt::HashAlgo kHash16Cycle[] = {
    rmt::HashAlgo::Crc16Buypass,
    rmt::HashAlgo::Crc16Mcrf4xx,
    rmt::HashAlgo::Crc16AugCcitt,
    rmt::HashAlgo::Crc16Dds110,
};

[[nodiscard]] std::array<std::uint8_t, 4> word_bytes(Word v) noexcept {
  return {static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
          static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
}
}  // namespace

Rpb::Rpb(int physical_id, bool ingress, std::uint32_t memory_size,
         std::uint32_t table_capacity)
    : physical_id_(physical_id),
      ingress_(ingress),
      table_(kRpbKeyWidth, table_capacity),
      memory_(memory_size),
      hash16_(kHash16Cycle[static_cast<std::size_t>(physical_id - 1) % 4]) {}

void Rpb::process(rmt::Phv& phv) {
  if (phv.program_id == 0) return;  // no program claimed this packet

  const bool bound = bound_ != nullptr;
  const RpbTable& table = read_table();
  // Provisioned-but-unused stage: nothing can match. Skip the cache and
  // lookup machinery but keep the per-stage miss accounting identical.
  if (table.size() == 0) {
    if (stats_ != nullptr) ++stats_->table_misses;
    ++phv.pkt_table_misses;
    return;
  }

  // Match cache: the winning entry for a (program, branch, recirc) triple
  // is a pure function of the triple unless some candidate entry keys on
  // the Har/Sar/Mar registers. Serve repeats from the cache; revalidate
  // against the table generation (master path) or the bound snapshot's
  // never-repeating epoch (sharded path) so entry churn and snapshot swaps
  // both invalidate instantly and a stale slot can never resurrect a
  // pointer into a superseded snapshot.
  const std::uint64_t tag = bound ? bound_epoch_ : table.generation();
  const std::uint64_t key = cache_key(phv.program_id, phv.branch_id, phv.recirc_id);
  CacheSlot& slot = match_cache_[cache_slot_index(key)];
  const RpbAction* action;
  if (slot.tag == tag && slot.key == key) {
    action = slot.action;
    ++match_cache_hits_;
    if (stats_ != nullptr) ++stats_->match_cache_hits;
  } else {
    const std::array<Word, kRpbKeyWidth> fields = {
        static_cast<Word>(phv.program_id), static_cast<Word>(phv.branch_id),
        static_cast<Word>(phv.recirc_id),  phv.reg(Reg::Har),
        phv.reg(Reg::Sar),                 phv.reg(Reg::Mar)};
    // Bound (snapshot) lookups use a null stats sink: the snapshot table
    // is shared across shards and its probe counters must stay untouched.
    action = bound ? table.lookup(fields, nullptr) : table.lookup(fields);
    if ((table.key_use(phv.program_id) & kRegisterKeyMask) == 0) {
      slot = CacheSlot{tag, key, action};
    }
  }
  if (action == nullptr) {
    if (stats_ != nullptr) ++stats_->table_misses;
    ++phv.pkt_table_misses;
    return;
  }
  // The entry's owner tag and the claiming program must agree: entries are
  // keyed exactly on the program id, so a mismatch means a corrupted plan.
  assert(action->owner == 0 || action->owner == phv.program_id);
  if (stats_ != nullptr) {
    ++stats_->table_hits;
    if (action->op.kind == OpKind::Mem) ++stats_->salu_execs;
  }
  ++phv.pkt_table_hits;
  if (action->op.kind == OpKind::Mem) ++phv.pkt_salu_execs;
  if (phv.trace != nullptr) {
    phv.trace->push_back("RPB" + std::to_string(physical_id_) + " r" +
                         std::to_string(phv.recirc_id) + " b" +
                         std::to_string(phv.branch_id) + ": " + action->op.str() +
                         (action->next_branch
                              ? " -> b" + std::to_string(*action->next_branch)
                              : ""));
  }
  if (phv.trace_events != nullptr) {
    rmt::TraceEvent event;
    event.block = rmt::TraceEvent::Block::Rpb;
    event.stage = physical_id_;
    event.round = phv.recirc_id;
    event.branch = phv.branch_id;
    event.op = action->op.str();
    if (action->next_branch) event.next_branch = *action->next_branch;
    phv.trace_events->push_back(std::move(event));
  }
  execute(action->op, phv);
  if (action->next_branch) phv.branch_id = *action->next_branch;
}

void Rpb::execute(const AtomicOp& op, rmt::Phv& phv) {
  switch (op.kind) {
    case OpKind::Nop:
    case OpKind::Branch:
      // Branch semantics live entirely in the key match + next_branch.
      return;
    case OpKind::Extract:
      phv.set_reg(op.reg0, rmt::read_field(phv.pkt, op.field, phv.qdepth));
      return;
    case OpKind::Modify:
      rmt::write_field(phv.pkt, op.field, phv.reg(op.reg0));
      phv.invalidate_five_tuple();
      return;
    case OpKind::Hash5Tuple:
      phv.set_reg(Reg::Har,
                  rmt::run_hash(rmt::HashAlgo::Crc32, phv.five_tuple_bytes()));
      return;
    case OpKind::HashHar: {
      const auto bytes = word_bytes(phv.reg(Reg::Har));
      phv.set_reg(Reg::Har, rmt::run_hash(rmt::HashAlgo::Crc32, bytes));
      return;
    }
    case OpKind::Hash5TupleMem:
      // Mask step merged with the hash action: overflowed hash output is
      // invisible to later primitives (§4.1.2).
      phv.set_reg(Reg::Mar,
                  rmt::run_hash(hash16_, phv.five_tuple_bytes()) & op.mask);
      return;
    case OpKind::HashHarMem: {
      const auto bytes = word_bytes(phv.reg(Reg::Har));
      phv.set_reg(Reg::Mar, rmt::run_hash(hash16_, bytes) & op.mask);
      return;
    }
    case OpKind::Offset:
      phv.phys_addr = phv.reg(Reg::Mar) + op.imm;
      return;
    case OpKind::Mem: {
      const rmt::SaluResult res =
          memory_.execute(op.salu, phv.phys_addr, phv.reg(Reg::Sar));
      if (res.sar_set) phv.set_reg(Reg::Sar, res.sar_out);
      return;
    }
    case OpKind::Loadi:
      phv.set_reg(op.reg0, op.imm);
      return;
    case OpKind::Add:
      phv.set_reg(op.reg0, phv.reg(op.reg0) + phv.reg(op.reg1));
      return;
    case OpKind::And:
      phv.set_reg(op.reg0, phv.reg(op.reg0) & phv.reg(op.reg1));
      return;
    case OpKind::Or:
      phv.set_reg(op.reg0, phv.reg(op.reg0) | phv.reg(op.reg1));
      return;
    case OpKind::Max:
      phv.set_reg(op.reg0, std::max(phv.reg(op.reg0), phv.reg(op.reg1)));
      return;
    case OpKind::Min:
      phv.set_reg(op.reg0, std::min(phv.reg(op.reg0), phv.reg(op.reg1)));
      return;
    case OpKind::Xor:
      phv.set_reg(op.reg0, phv.reg(op.reg0) ^ phv.reg(op.reg1));
      return;
    case OpKind::Backup:
      phv.backup = phv.reg(op.reg0);
      return;
    case OpKind::Restore:
      phv.set_reg(op.reg0, phv.backup);
      return;
    case OpKind::Forward:
      assert(ingress_ && "forwarding primitives are ingress-only");
      phv.decision = rmt::FwdDecision::Forward;
      phv.egress_port = static_cast<Port>(op.imm);
      return;
    case OpKind::Drop:
      assert(ingress_);
      phv.decision = rmt::FwdDecision::Drop;
      return;
    case OpKind::Return:
      assert(ingress_);
      phv.decision = rmt::FwdDecision::Return;
      return;
    case OpKind::Report:
      assert(ingress_);
      phv.decision = rmt::FwdDecision::Report;
      return;
    case OpKind::Multicast:
      assert(ingress_);
      phv.decision = rmt::FwdDecision::Multicast;
      phv.mcast_group = op.imm;
      return;
  }
}

}  // namespace p4runpro::dp
