// Declarative data-plane write operations (the control plane's op-log).
// Staging a deploy/relink/revoke transaction produces a WriteBatch — a
// flat, enumerable list of WriteOps — instead of mutating the dataplane as
// a side effect of install(); the update engine then *executes* the batch
// through the simulated bfrt channel, and RunproDataplane::apply() returns
// the exact inverse of every applied op, which the executor stacks into a
// rollback journal. A fault at any write index therefore unwinds to a
// byte-identical pre-transaction state (paper §4.3: no intermediate state
// is ever exposed; RBFRT-style batched write plans).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "dataplane/init_block.h"
#include "dataplane/rpb.h"
#include "rmt/tables.h"

namespace p4runpro::dp {

/// One planned RPB table entry, fully bound (physical RPB, ternary keys,
/// priority, action). The declarative twin of a bfrt table_add.
struct RpbEntryWrite {
  int rpb = 0;  ///< physical RPB id (1-based)
  std::vector<rmt::TernaryKey> keys;
  int priority = 0;
  RpbAction action;
};

/// A single data-plane mutation. Exactly one of the payload groups below is
/// meaningful per kind; unused fields stay default. Ops are self-inverse
/// pairs: applying an Add yields the matching Del (with handles filled in),
/// applying a Del yields the matching Add, and the memory ops yield
/// RestoreMemRange carrying the overwritten words.
struct WriteOp {
  enum class Kind : std::uint8_t {
    AddRecirc,       ///< install recirculation entries (rounds - 1 writes)
    AddRpbEntry,     ///< insert one RPB table entry
    AddFilters,      ///< install the init-block filters (activates the program)
    DelRecirc,       ///< remove recirculation entries by handle
    DelRpbEntry,     ///< erase one RPB table entry by handle
    DelFilters,      ///< remove the init-block filters (deactivates the program)
    WriteMemRange,   ///< write a word range (relink state carry-over)
    ResetMemRange,   ///< zero a word range (termination memory reset)
    RestoreMemRange, ///< write back previously captured words (rollback only)
  };

  Kind kind = Kind::AddRecirc;
  ProgramId program = 0;

  // AddRpbEntry: `entry` is the spec. DelRpbEntry: `rpb_handle` identifies
  // the live entry and `entry` is kept so the inverse (re-add) is exact.
  RpbEntryWrite entry;
  rmt::EntryHandle rpb_handle = 0;

  // AddFilters: tuples + priority. DelFilters: handles (tuples + priority
  // kept for the inverse).
  std::vector<FilterTuple> filters;
  int filter_priority = 0;
  std::vector<InitBlock::InstalledFilter> filter_handles;

  // AddRecirc: rounds. DelRecirc: handles (rounds kept for the inverse).
  int rounds = 1;
  std::vector<rmt::EntryHandle> recirc_handles;

  // Memory ops: physical range inside `mem_rpb`'s stage memory.
  // WriteMemRange/RestoreMemRange carry the words to write in `mem_words`;
  // ResetMemRange zeroes `mem_size` words.
  int mem_rpb = 0;
  std::uint32_t mem_base = 0;
  std::uint32_t mem_size = 0;
  std::vector<Word> mem_words;
  std::string vmem;  ///< memory ops: virtual memory name (spans/diagnostics)

  [[nodiscard]] bool is_memory_op() const noexcept {
    return kind == Kind::WriteMemRange || kind == Kind::ResetMemRange ||
           kind == Kind::RestoreMemRange;
  }
};

/// An ordered op-log: the staged plan of one transaction. Builders append
/// in consistent-update order (adds: recirc -> RPB -> filters last; deletes:
/// filters first -> RPB -> recirc -> memory reset), which the executor
/// relies on for the paper's §4.3 visibility guarantees.
struct WriteBatch {
  std::vector<WriteOp> ops;

  WriteOp& add_recirc(ProgramId program, int rounds) {
    WriteOp op;
    op.kind = WriteOp::Kind::AddRecirc;
    op.program = program;
    op.rounds = rounds;
    return ops.emplace_back(std::move(op));
  }

  WriteOp& add_rpb_entry(ProgramId program, RpbEntryWrite entry) {
    WriteOp op;
    op.kind = WriteOp::Kind::AddRpbEntry;
    op.program = program;
    op.entry = std::move(entry);
    return ops.emplace_back(std::move(op));
  }

  WriteOp& add_filters(ProgramId program, std::vector<FilterTuple> filters,
                       int priority) {
    WriteOp op;
    op.kind = WriteOp::Kind::AddFilters;
    op.program = program;
    op.filters = std::move(filters);
    op.filter_priority = priority;
    return ops.emplace_back(std::move(op));
  }

  WriteOp& del_recirc(ProgramId program, std::vector<rmt::EntryHandle> handles,
                      int rounds) {
    WriteOp op;
    op.kind = WriteOp::Kind::DelRecirc;
    op.program = program;
    op.recirc_handles = std::move(handles);
    op.rounds = rounds;
    return ops.emplace_back(std::move(op));
  }

  WriteOp& del_rpb_entry(ProgramId program, RpbEntryWrite entry,
                         rmt::EntryHandle handle) {
    WriteOp op;
    op.kind = WriteOp::Kind::DelRpbEntry;
    op.program = program;
    op.entry = std::move(entry);
    op.rpb_handle = handle;
    return ops.emplace_back(std::move(op));
  }

  WriteOp& del_filters(ProgramId program,
                       std::vector<InitBlock::InstalledFilter> handles,
                       std::vector<FilterTuple> filters, int priority) {
    WriteOp op;
    op.kind = WriteOp::Kind::DelFilters;
    op.program = program;
    op.filter_handles = std::move(handles);
    op.filters = std::move(filters);
    op.filter_priority = priority;
    return ops.emplace_back(std::move(op));
  }

  WriteOp& write_mem_range(int rpb, std::uint32_t base, std::vector<Word> words,
                           std::string vmem) {
    WriteOp op;
    op.kind = WriteOp::Kind::WriteMemRange;
    op.mem_rpb = rpb;
    op.mem_base = base;
    op.mem_size = static_cast<std::uint32_t>(words.size());
    op.mem_words = std::move(words);
    op.vmem = std::move(vmem);
    return ops.emplace_back(std::move(op));
  }

  WriteOp& reset_mem_range(int rpb, std::uint32_t base, std::uint32_t size,
                           std::string vmem) {
    WriteOp op;
    op.kind = WriteOp::Kind::ResetMemRange;
    op.mem_rpb = rpb;
    op.mem_base = base;
    op.mem_size = size;
    op.vmem = std::move(vmem);
    return ops.emplace_back(std::move(op));
  }

  [[nodiscard]] bool empty() const noexcept { return ops.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return ops.size(); }
};

}  // namespace p4runpro::dp
