// Runtime programming block: one per pipeline stage (except the stages the
// initialization and recirculation blocks occupy). An RPB is "a large table
// with the keys of control flags and registers and the actions implementing
// the atomic operations" (paper §5), plus this stage's stateful memory and
// hash unit.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>

#include "common/types.h"
#include "dataplane/atomic_op.h"
#include "rmt/crc.h"
#include "rmt/memory.h"
#include "rmt/pipeline.h"
#include "rmt/tables.h"

namespace p4runpro::dp {

/// Action payload of an RPB entry: the atomic operation plus an optional
/// branch-id transition (BRANCH case entries and the case-body rejoin).
/// `owner` tags the entry with the program it belongs to (entry->program
/// mapping for attribution); entry generation sets it, and because RPB
/// entries match exactly on the program-id key it always equals the
/// claiming packet's program id. 0 means untagged (hand-built entries).
struct RpbAction {
  AtomicOp op;
  std::optional<BranchId> next_branch;
  ProgramId owner = 0;
};

/// Exact/ternary key layout of the RPB table, in order.
enum RpbKeyField : int {
  kKeyProgram = 0,
  kKeyBranch = 1,
  kKeyRecirc = 2,
  kKeyHar = 3,
  kKeySar = 4,
  kKeyMar = 5,
};
inline constexpr int kRpbKeyWidth = 6;

/// The RPB's table type: key width fixed at compile time so every entry
/// stores its keys inline (no per-entry heap hop on the lookup path).
using RpbTable = rmt::TernaryTable<RpbAction, kRpbKeyWidth>;

class Rpb final : public rmt::PipelineStage {
 public:
  /// `physical_id` is 1-based over all RPBs (ingress then egress); the hash
  /// unit algorithm cycles through the four CRC-16 variants per stage so
  /// that multi-row sketches get independent hash functions (Fig. 13d).
  Rpb(int physical_id, bool ingress, std::uint32_t memory_size,
      std::uint32_t table_capacity);

  void process(rmt::Phv& phv) override;

  /// Entry management (called by the update engine). Always the master
  /// table, even when a snapshot is bound: control writes never touch a
  /// published snapshot.
  RpbTable& table() noexcept { return table_; }
  [[nodiscard]] const RpbTable& table() const noexcept { return table_; }

  /// Redirect match lookups to a frozen snapshot table, tagged with the
  /// snapshot's globally unique epoch (nullptr/0 = back to the own table).
  /// Shard instances are re-bound at every batch start. The epoch becomes
  /// the match-cache validity tag: epochs never repeat, so a cache slot
  /// filled against a superseded snapshot can never validate again — a
  /// per-table generation could collide across snapshots whose OTHER
  /// tables differ, and the cached action pointer would dangle into freed
  /// snapshot storage.
  void bind_table(const RpbTable* table, std::uint64_t epoch) noexcept {
    bound_ = table;
    bound_epoch_ = epoch;
  }

  /// The table lookups currently read from: the bound snapshot table when
  /// sharded, the own/master table otherwise.
  [[nodiscard]] const RpbTable& read_table() const noexcept {
    return bound_ != nullptr ? *bound_ : table_;
  }

  rmt::StageMemory& memory() noexcept { return memory_; }
  [[nodiscard]] const rmt::StageMemory& memory() const noexcept { return memory_; }

  [[nodiscard]] int physical_id() const noexcept { return physical_id_; }
  [[nodiscard]] bool is_ingress() const noexcept { return ingress_; }
  [[nodiscard]] rmt::HashAlgo hash16_algo() const noexcept { return hash16_; }

  /// Execution-counter sink (the owning pipeline's StageStats); wired once
  /// by the data plane at provisioning time.
  void set_stage_stats(rmt::StageStats* stats) noexcept { stats_ = stats; }

  /// Packets whose winning entry was served from the match cache since
  /// provisioning (also mirrored into StageStats::match_cache_hits).
  [[nodiscard]] std::uint64_t match_cache_hits() const noexcept {
    return match_cache_hits_;
  }

 private:
  void execute(const AtomicOp& op, rmt::Phv& phv);

  /// Direct-mapped match cache over the (program, branch, recirc) control
  /// flags. A cached winner is valid only while the validity tag is
  /// unchanged AND no entry that could match the program keys on the
  /// Har/Sar/Mar components (checked via RpbTable::key_use at fill time),
  /// so conditional-branch and register-keyed programs stay exact. Misses
  /// (nullptr winners) are cached too under the same validity rule.
  /// The tag is the own table's generation on the master path and the
  /// bound snapshot's epoch on the sharded path (see bind_table).
  struct CacheSlot {
    std::uint64_t tag = 0;  ///< 0 = empty (generations and epochs start at 1)
    std::uint64_t key = 0;  ///< packed (program, branch, recirc) triple
    const RpbAction* action = nullptr;
  };
  static constexpr std::size_t kMatchCacheSlots = 64;  // power of two
  static constexpr std::uint32_t kRegisterKeyMask =
      (1u << kKeyHar) | (1u << kKeySar) | (1u << kKeyMar);

  /// The (program, branch, recirc) control flags packed into one word so a
  /// cache probe is a single compare (ids are 16/16/8 bits).
  [[nodiscard]] static std::uint64_t cache_key(ProgramId program, BranchId branch,
                                               RecircId recirc) noexcept {
    return (static_cast<std::uint64_t>(program) << 32) |
           (static_cast<std::uint64_t>(branch) << 8) |
           static_cast<std::uint64_t>(recirc);
  }

  [[nodiscard]] static std::size_t cache_slot_index(std::uint64_t key) noexcept {
    const std::uint32_t h =
        static_cast<std::uint32_t>(key >> 32) * 0x9e3779b1u ^
        static_cast<std::uint32_t>(key);
    return (h ^ (h >> 16)) & (kMatchCacheSlots - 1);
  }

  int physical_id_;
  bool ingress_;
  RpbTable table_;
  const RpbTable* bound_ = nullptr;
  std::uint64_t bound_epoch_ = 0;
  rmt::StageMemory memory_;
  rmt::HashAlgo hash16_;
  rmt::StageStats* stats_ = nullptr;
  std::array<CacheSlot, kMatchCacheSlots> match_cache_{};
  std::uint64_t match_cache_hits_ = 0;
};

}  // namespace p4runpro::dp
