// Runtime programming block: one per pipeline stage (except the stages the
// initialization and recirculation blocks occupy). An RPB is "a large table
// with the keys of control flags and registers and the actions implementing
// the atomic operations" (paper §5), plus this stage's stateful memory and
// hash unit.
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.h"
#include "dataplane/atomic_op.h"
#include "rmt/crc.h"
#include "rmt/memory.h"
#include "rmt/pipeline.h"
#include "rmt/tables.h"

namespace p4runpro::dp {

/// Action payload of an RPB entry: the atomic operation plus an optional
/// branch-id transition (BRANCH case entries and the case-body rejoin).
/// `owner` tags the entry with the program it belongs to (entry->program
/// mapping for attribution); entry generation sets it, and because RPB
/// entries match exactly on the program-id key it always equals the
/// claiming packet's program id. 0 means untagged (hand-built entries).
struct RpbAction {
  AtomicOp op;
  std::optional<BranchId> next_branch;
  ProgramId owner = 0;
};

/// Exact/ternary key layout of the RPB table, in order.
enum RpbKeyField : int {
  kKeyProgram = 0,
  kKeyBranch = 1,
  kKeyRecirc = 2,
  kKeyHar = 3,
  kKeySar = 4,
  kKeyMar = 5,
};
inline constexpr int kRpbKeyWidth = 6;

class Rpb final : public rmt::PipelineStage {
 public:
  /// `physical_id` is 1-based over all RPBs (ingress then egress); the hash
  /// unit algorithm cycles through the four CRC-16 variants per stage so
  /// that multi-row sketches get independent hash functions (Fig. 13d).
  Rpb(int physical_id, bool ingress, std::uint32_t memory_size,
      std::uint32_t table_capacity);

  void process(rmt::Phv& phv) override;

  /// Entry management (called by the update engine).
  rmt::TernaryTable<RpbAction>& table() noexcept { return table_; }
  [[nodiscard]] const rmt::TernaryTable<RpbAction>& table() const noexcept { return table_; }

  rmt::StageMemory& memory() noexcept { return memory_; }
  [[nodiscard]] const rmt::StageMemory& memory() const noexcept { return memory_; }

  [[nodiscard]] int physical_id() const noexcept { return physical_id_; }
  [[nodiscard]] bool is_ingress() const noexcept { return ingress_; }
  [[nodiscard]] rmt::HashAlgo hash16_algo() const noexcept { return hash16_; }

  /// Execution-counter sink (the owning pipeline's StageStats); wired once
  /// by the data plane at provisioning time.
  void set_stage_stats(rmt::StageStats* stats) noexcept { stats_ = stats; }

 private:
  void execute(const AtomicOp& op, rmt::Phv& phv);

  int physical_id_;
  bool ingress_;
  rmt::TernaryTable<RpbAction> table_;
  rmt::StageMemory memory_;
  rmt::HashAlgo hash16_;
  rmt::StageStats* stats_ = nullptr;
};

}  // namespace p4runpro::dp
