// Multi-switch alternative to recirculation (paper §4.1.3 / §5): "the
// recirculation block is not indispensable, as it can be replaced by
// multiple switches processing sequentially". A SwitchChain runs a packet
// through K identically-provisioned P4runpro switches; when switch j flags
// the packet for another round, it travels to switch j+1 instead of
// looping — the recirculation id doubles as the hop count, so the very
// same table entries work unchanged on the switch of their round.
//
// Deployment model (the simple "mirror" mode): the operator links the same
// programs on every switch of the chain, so round-j entries exist on
// switch j (they match nowhere else: the recirculation id in their keys is
// exact). Programs whose memory is touched in more than one round are
// rejected for chains — the rounds live on different switches with
// different physical memories (this is the constraint-(5) adjustment the
// paper notes). ctrl::ChainController layers atomic chain-wide deploy
// transactions on top (reserve on every hop, two-phase commit, per-hop
// rollback journals; docs/ARCHITECTURE.md "Chain transactions").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataplane/runpro_dataplane.h"

namespace p4runpro::dp {

class SwitchChain {
 public:
  /// Build a chain of `length` switches with the given per-switch spec
  /// (its max_recirculations bounds the compiler, and therefore the number
  /// of rounds = hops a program may use; it should equal length - 1).
  SwitchChain(int length, DataplaneSpec spec, rmt::ParserConfig parser_config);

  /// Heterogeneous chain: one spec per hop. Mirror deployment (and the
  /// chain controller) requires uniform specs — `uniform_specs()` reports
  /// the first divergence — but packets still traverse a mixed chain, so
  /// misprovisioned chains are representable and diagnosable.
  SwitchChain(const std::vector<DataplaneSpec>& specs,
              rmt::ParserConfig parser_config);

  /// Run one packet across the chain. Throughput is unaffected by long
  /// programs: every hop is a fresh pipeline at line rate (the trade-off
  /// is one switch per extra round instead of recirculation bandwidth).
  rmt::PipelineResult inject(const rmt::Packet& pkt);

  [[nodiscard]] int length() const noexcept { return static_cast<int>(switches_.size()); }
  [[nodiscard]] RunproDataplane& switch_at(int hop) { return *switches_[static_cast<std::size_t>(hop)]; }
  [[nodiscard]] const RunproDataplane& switch_at(int hop) const {
    return *switches_[static_cast<std::size_t>(hop)];
  }
  [[nodiscard]] const DataplaneSpec& spec_at(int hop) const {
    return switch_at(hop).spec();
  }

  /// Mirror deployment requires every hop provisioned identically (the
  /// same allocation must be valid on each switch). Names the first hop —
  /// and the first DataplaneSpec field — that diverges from hop 0.
  [[nodiscard]] Status uniform_specs() const;

  /// True iff a program's allocation is chain-compatible: no virtual
  /// memory is accessed in more than one round.
  [[nodiscard]] static bool chain_compatible(const std::map<std::string, std::vector<int>>& vmem_depths,
                                             const std::vector<int>& x, int total_rpbs);

  /// Diagnostic form of chain_compatible: on failure the error names the
  /// offending virtual memory and the conflicting rounds (= chain hops),
  /// so the operator knows exactly which access pattern pins the program
  /// to a recirculating switch.
  [[nodiscard]] static Status chain_compatibility(
      const std::map<std::string, std::vector<int>>& vmem_depths,
      const std::vector<int>& x, int total_rpbs);

 private:
  std::vector<std::unique_ptr<RunproDataplane>> switches_;
};

}  // namespace p4runpro::dp
