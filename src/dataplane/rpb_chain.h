// Composite pipeline stage running a sequence of RPBs as one unit. The
// chain hoists two checks out of the per-RPB loop that otherwise cost a
// virtual call per provisioned stage per packet:
//   - unclaimed packets (program_id == 0) skip the whole chain — no RPB
//     acts on them, by the same rule Rpb::process applies per stage;
//   - RPBs with an empty table are skipped, with their miss accounting
//     (one table miss per claimed packet per empty stage) applied in bulk
//     so every counter advances exactly as if each stage had run.
// Entry installation keeps addressing individual Rpb objects through
// RunproDataplane::rpb(); the chain only changes how a pass iterates them.
#pragma once

#include <memory>
#include <vector>

#include "dataplane/rpb.h"
#include "rmt/pipeline.h"

namespace p4runpro::dp {

class RpbChain final : public rmt::PipelineStage {
 public:
  RpbChain(std::vector<std::shared_ptr<Rpb>> rpbs, rmt::StageStats* stats)
      : rpbs_(std::move(rpbs)), stats_(stats) {
    raw_.reserve(rpbs_.size());
    for (const auto& rpb : rpbs_) raw_.push_back(rpb.get());
  }

  void process(rmt::Phv& phv) override {
    if (phv.program_id == 0) return;
    std::uint32_t skipped = 0;
    for (Rpb* rpb : raw_) {
      // read_table(): the bound snapshot table when sharded, so the empty
      // check and the lookup inside process() see the same frozen state.
      if (rpb->read_table().size() == 0) {
        ++skipped;
        continue;
      }
      rpb->process(phv);
    }
    if (skipped != 0) {
      if (stats_ != nullptr) stats_->table_misses += skipped;
      phv.pkt_table_misses += skipped;
    }
  }

 private:
  std::vector<std::shared_ptr<Rpb>> rpbs_;
  std::vector<Rpb*> raw_;  // devirtualized iteration order (Rpb is final)
  rmt::StageStats* stats_;
};

}  // namespace p4runpro::dp
