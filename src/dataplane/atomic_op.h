// Atomic operations: the general, pre-installed packet-processing steps
// that RPB table entries select at runtime (paper §4.1.2 / Table 3). An
// AtomicOp is the *action* side of an RPB entry; the six primitive types of
// the DSL map 1:1 onto these kinds after pseudo-primitive translation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/types.h"
#include "rmt/memory.h"
#include "rmt/packet.h"

namespace p4runpro::dp {

enum class OpKind : std::uint8_t {
  Nop,
  // Header interaction
  Extract,  ///< reg0 = field
  Modify,   ///< field = reg0
  // Hash
  Hash5Tuple,     ///< har = hash(5_tuple)           (32-bit output)
  HashHar,        ///< har = hash(har)               (32-bit output)
  Hash5TupleMem,  ///< mar = hash16(5_tuple) & mask  (mask step merged)
  HashHarMem,     ///< mar = hash16(har) & mask
  // Conditional branch: the matching case entry's action; the new branch id
  // travels in RpbAction::next_branch.
  Branch,
  // Address translation offset step: phys_addr = mar + imm (and SALU-flag
  // set); a separate AST node/depth, see Fig. 5(b).
  Offset,
  // Memory (executes the SALU of this stage at phys_addr)
  Mem,  ///< salu selects MEMADD/...; result register handling per Table 3
  // Arithmetic & logic
  Loadi,  ///< reg0 = imm
  Add,    ///< reg0 += reg1
  And,
  Or,
  Max,
  Min,
  Xor,
  // Supportive-register save/restore for pseudo-primitive translation
  Backup,   ///< backup = reg0
  Restore,  ///< reg0 = backup
  // Forwarding (ingress RPBs only)
  Forward,   ///< egress port = imm
  Drop,
  Return,
  Report,
  Multicast,  ///< replicate to multicast group imm (§7 extension)
};

[[nodiscard]] const char* op_kind_name(OpKind kind) noexcept;

/// A fully-specified atomic operation (OpKind + arguments). Only the fields
/// relevant to the kind are meaningful.
struct AtomicOp {
  OpKind kind = OpKind::Nop;
  rmt::FieldId field = rmt::FieldId::Ipv4Src;  // Extract / Modify
  Reg reg0 = Reg::Har;
  Reg reg1 = Reg::Sar;
  Word imm = 0;               // Loadi / Offset / Forward(port)
  Word mask = 0xffffffffu;    // merged mask step of Hash*Mem
  rmt::SaluOp salu = rmt::SaluOp::Read;  // Mem

  [[nodiscard]] std::string str() const;

  // Convenience constructors --------------------------------------------
  [[nodiscard]] static AtomicOp nop() { return {}; }
  [[nodiscard]] static AtomicOp extract(rmt::FieldId f, Reg r);
  [[nodiscard]] static AtomicOp modify(rmt::FieldId f, Reg r);
  [[nodiscard]] static AtomicOp hash_5_tuple();
  [[nodiscard]] static AtomicOp hash_har();
  [[nodiscard]] static AtomicOp hash_5_tuple_mem(Word mask);
  [[nodiscard]] static AtomicOp hash_har_mem(Word mask);
  [[nodiscard]] static AtomicOp branch();
  [[nodiscard]] static AtomicOp offset(Word phys_base);
  [[nodiscard]] static AtomicOp mem(rmt::SaluOp salu);
  [[nodiscard]] static AtomicOp loadi(Reg r, Word imm);
  [[nodiscard]] static AtomicOp alu(OpKind kind, Reg r0, Reg r1);
  [[nodiscard]] static AtomicOp backup(Reg r);
  [[nodiscard]] static AtomicOp restore(Reg r);
  [[nodiscard]] static AtomicOp forward(Port port);
  [[nodiscard]] static AtomicOp multicast(Word group);
  [[nodiscard]] static AtomicOp drop();
  [[nodiscard]] static AtomicOp ret();
  [[nodiscard]] static AtomicOp report();
};

/// True for the forwarding kinds that only ingress RPBs may execute.
[[nodiscard]] bool is_forwarding(OpKind kind) noexcept;
/// True for the kinds that access this stage's stateful memory.
[[nodiscard]] bool is_memory(OpKind kind) noexcept;
/// True for the hash kinds (consume the stage's hash unit).
[[nodiscard]] bool is_hash(OpKind kind) noexcept;

}  // namespace p4runpro::dp
