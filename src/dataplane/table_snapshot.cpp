#include "dataplane/table_snapshot.h"

namespace p4runpro::dp {

TableSnapshot::TableSnapshot(const InitBlock& init,
                             const std::vector<std::shared_ptr<Rpb>>& rpbs,
                             const RecircBlock& recirc_block, std::uint64_t trace,
                             std::uint64_t generation)
    : table_trace(trace),
      table_generation(generation),
      filters{init.table(ParsePath::Eth), init.table(ParsePath::Ipv4),
              init.table(ParsePath::Tcp), init.table(ParsePath::Udp),
              init.table(ParsePath::App)},
      recirc(recirc_block.table()) {
  rpb_tables.reserve(rpbs.size());
  for (const auto& rpb : rpbs) rpb_tables.push_back(rpb->table());
}

}  // namespace p4runpro::dp
