#include "dataplane/switch_chain.h"

#include <set>

namespace p4runpro::dp {

SwitchChain::SwitchChain(int length, DataplaneSpec spec,
                         rmt::ParserConfig parser_config) {
  for (int i = 0; i < length; ++i) {
    switches_.push_back(std::make_unique<RunproDataplane>(spec, parser_config));
  }
}

rmt::PipelineResult SwitchChain::inject(const rmt::Packet& pkt) {
  rmt::PipelineResult result;
  rmt::Phv phv = switches_.front()->pipeline().parse_packet(pkt);
  for (std::size_t hop = 0; hop < switches_.size(); ++hop) {
    const auto step = switches_[hop]->pipeline().process_pass(phv);
    if (step.outcome == rmt::Pipeline::PassOutcome::Recirculate) {
      ++result.recirc_passes;  // counted as chain hops here
      if (hop + 1 == switches_.size()) {
        // Ran off the end of the chain: the program needed more rounds
        // than there are switches.
        result.fate = rmt::PacketFate::RecircLimit;
        result.packet = phv.pkt;
        return result;
      }
      continue;  // hand the PHV (the P4runpro header) to the next switch
    }
    result.fate = step.fate;
    result.egress_port = step.egress_port;
    result.packet = phv.pkt;
    return result;
  }
  result.packet = phv.pkt;
  return result;
}

bool SwitchChain::chain_compatible(
    const std::map<std::string, std::vector<int>>& vmem_depths,
    const std::vector<int>& x, int total_rpbs) {
  for (const auto& [vmem, depths] : vmem_depths) {
    std::set<int> rounds;
    for (int depth : depths) {
      rounds.insert(recirc_round(x[static_cast<std::size_t>(depth - 1)], total_rpbs));
    }
    if (rounds.size() > 1) return false;
  }
  return true;
}

}  // namespace p4runpro::dp
