#include "dataplane/switch_chain.h"

#include <set>

namespace p4runpro::dp {

SwitchChain::SwitchChain(int length, DataplaneSpec spec,
                         rmt::ParserConfig parser_config) {
  for (int i = 0; i < length; ++i) {
    switches_.push_back(std::make_unique<RunproDataplane>(spec, parser_config));
  }
}

SwitchChain::SwitchChain(const std::vector<DataplaneSpec>& specs,
                         rmt::ParserConfig parser_config) {
  for (const DataplaneSpec& spec : specs) {
    switches_.push_back(std::make_unique<RunproDataplane>(spec, parser_config));
  }
}

rmt::PipelineResult SwitchChain::inject(const rmt::Packet& pkt) {
  rmt::PipelineResult result;
  rmt::Phv phv = switches_.front()->pipeline().parse_packet(pkt);
  for (std::size_t hop = 0; hop < switches_.size(); ++hop) {
    const auto step = switches_[hop]->pipeline().process_pass(phv);
    if (step.outcome == rmt::Pipeline::PassOutcome::Recirculate) {
      ++result.recirc_passes;  // counted as chain hops here
      if (hop + 1 == switches_.size()) {
        // Ran off the end of the chain: the program needed more rounds
        // than there are switches.
        result.fate = rmt::PacketFate::RecircLimit;
        result.packet = phv.pkt;
        return result;
      }
      continue;  // hand the PHV (the P4runpro header) to the next switch
    }
    result.fate = step.fate;
    result.egress_port = step.egress_port;
    result.packet = phv.pkt;
    return result;
  }
  result.packet = phv.pkt;
  return result;
}

Status SwitchChain::uniform_specs() const {
  const DataplaneSpec& base = switches_.front()->spec();
  const auto mismatch = [&](int hop, const char* field, long long got,
                            long long want) -> Error {
    return Error{"hop " + std::to_string(hop) + " spec mismatch: " + field +
                     " = " + std::to_string(got) + ", hop 0 has " +
                     std::to_string(want),
                 "SwitchChain", ErrorCode::InvalidArgument};
  };
  for (std::size_t hop = 1; hop < switches_.size(); ++hop) {
    const DataplaneSpec& spec = switches_[hop]->spec();
    const int h = static_cast<int>(hop);
    if (spec.ingress_rpbs != base.ingress_rpbs) {
      return mismatch(h, "ingress_rpbs", spec.ingress_rpbs, base.ingress_rpbs);
    }
    if (spec.egress_rpbs != base.egress_rpbs) {
      return mismatch(h, "egress_rpbs", spec.egress_rpbs, base.egress_rpbs);
    }
    if (spec.memory_per_rpb != base.memory_per_rpb) {
      return mismatch(h, "memory_per_rpb", spec.memory_per_rpb, base.memory_per_rpb);
    }
    if (spec.entries_per_rpb != base.entries_per_rpb) {
      return mismatch(h, "entries_per_rpb", spec.entries_per_rpb,
                      base.entries_per_rpb);
    }
    if (spec.max_recirculations != base.max_recirculations) {
      return mismatch(h, "max_recirculations", spec.max_recirculations,
                      base.max_recirculations);
    }
    if (spec.hash_output_bits != base.hash_output_bits) {
      return mismatch(h, "hash_output_bits", spec.hash_output_bits,
                      base.hash_output_bits);
    }
  }
  return {};
}

Status SwitchChain::chain_compatibility(
    const std::map<std::string, std::vector<int>>& vmem_depths,
    const std::vector<int>& x, int total_rpbs) {
  for (const auto& [vmem, depths] : vmem_depths) {
    std::set<int> rounds;
    for (int depth : depths) {
      rounds.insert(recirc_round(x[static_cast<std::size_t>(depth - 1)], total_rpbs));
    }
    if (rounds.size() > 1) {
      std::string listed;
      for (int round : rounds) {
        if (!listed.empty()) listed += ", ";
        listed += std::to_string(round);
      }
      return Error{"virtual memory '" + vmem + "' is accessed in rounds " +
                       listed + " — each round runs on a different chain hop "
                       "with its own physical memory, so the program needs a "
                       "recirculating switch",
                   "SwitchChain", ErrorCode::InvalidArgument};
    }
  }
  return {};
}

bool SwitchChain::chain_compatible(
    const std::map<std::string, std::vector<int>>& vmem_depths,
    const std::vector<int>& x, int total_rpbs) {
  return chain_compatibility(vmem_depths, x, total_rpbs).ok();
}

}  // namespace p4runpro::dp
