// Epoch-based RCU hub for TableSnapshot publication. The control plane is
// the single writer: it builds the next snapshot off to the side and swaps
// one atomic pointer; shard readers pin the current snapshot for the length
// of one inject_batch without taking any lock on the match path.
//
// Protocol:
//   - acquire(reader): slot[reader] = global_epoch (announce), then load
//     the current pointer. The returned ReadGuard keeps the snapshot alive;
//     its destructor stores 0 (quiescent) into the slot.
//   - publish(next): next->epoch = ++epoch; old = current.exchange(next);
//     retire old at the pre-publish epoch. A retired snapshot is freed only
//     once every reader slot is either quiescent or announced at a LATER
//     epoch than the retirement — i.e. every batch that could still hold a
//     reference has drained (the grace period).
//   - rollback never publishes: a faulted control operation unwinds the
//     master tables and leaves the current snapshot untouched, so readers
//     keep matching against the last good state (the byte-identical
//     rollback guarantee extends to the sharded path for free).
//
// Ordering: all slot/pointer operations are seq_cst. The writer's
// epoch-increment is observed by any acquire that could have missed the
// pointer swap, so try_reclaim's "slot == 0 or slot > retire epoch" test is
// sufficient — a reader announced at epoch <= E may still be using the
// snapshot retired at E, and blocks its reclamation.
//
// One hub per dataplane; reader ids are shard indices (one in-flight batch
// per shard — the shard worker contract, see RunproDataplane).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace p4runpro::obs {
struct Telemetry;
}

namespace p4runpro::dp {

struct TableSnapshot;

class SnapshotHub {
 public:
  /// `readers` = number of shard workers that will ever call acquire()
  /// concurrently (one slot each).
  explicit SnapshotHub(int readers);
  ~SnapshotHub();

  SnapshotHub(const SnapshotHub&) = delete;
  SnapshotHub& operator=(const SnapshotHub&) = delete;

  /// Pins the current snapshot for reader `reader` (in [0, readers())).
  /// Returned guard must be destroyed before the same reader acquires
  /// again. Requires a prior publish (the dataplane publishes the initial
  /// snapshot when sharding is enabled).
  class ReadGuard {
   public:
    ReadGuard(ReadGuard&& other) noexcept
        : hub_(other.hub_), slot_(other.slot_), snap_(other.snap_) {
      other.hub_ = nullptr;
    }
    ReadGuard& operator=(ReadGuard&&) = delete;
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ~ReadGuard();

    [[nodiscard]] const TableSnapshot& operator*() const noexcept { return *snap_; }
    [[nodiscard]] const TableSnapshot* operator->() const noexcept { return snap_; }
    [[nodiscard]] const TableSnapshot* get() const noexcept { return snap_; }

   private:
    friend class SnapshotHub;
    ReadGuard(SnapshotHub* hub, int slot, const TableSnapshot* snap) noexcept
        : hub_(hub), slot_(slot), snap_(snap) {}
    SnapshotHub* hub_;
    int slot_;
    const TableSnapshot* snap_;
  };

  [[nodiscard]] ReadGuard acquire(int reader) noexcept;

  /// Publish `next` as the current snapshot (single-writer: callers hold
  /// the control-plane session lock). Assigns next->epoch, retires the
  /// previous snapshot and opportunistically reclaims any retired snapshot
  /// whose grace period has elapsed.
  void publish(std::unique_ptr<TableSnapshot> next);

  /// Free every retired snapshot whose grace period has elapsed; returns
  /// how many were freed. Called from publish(); exposed for tests and for
  /// explicit drains.
  std::size_t try_reclaim();

  /// Block until every snapshot retired so far has been reclaimed (spins
  /// on reader slots; used by disable_sharding and the hub destructor).
  void synchronize();

  [[nodiscard]] int readers() const noexcept { return static_cast<int>(slots_.size()); }
  /// Epoch of the latest publish (0 = nothing published yet).
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_seq_cst);
  }
  [[nodiscard]] std::uint64_t publishes() const noexcept { return epoch(); }
  /// Retired-but-not-yet-freed snapshots (readers still inside the grace
  /// period hold them live).
  [[nodiscard]] std::size_t retired_pending() const;
  /// Total snapshots freed after their grace period elapsed.
  [[nodiscard]] std::uint64_t reclaimed() const noexcept {
    return reclaimed_.load(std::memory_order_relaxed);
  }
  /// Total batch-level acquires served (one per shard batch).
  [[nodiscard]] std::uint64_t acquires() const noexcept {
    return acquires_.load(std::memory_order_relaxed);
  }

  /// Expose hub health as sampled probes under "rmt.snapshot.*". Same
  /// contract as Pipeline::attach_telemetry: re-attaching replaces, the
  /// destructor unregisters.
  void attach_telemetry(obs::Telemetry* telemetry);

 private:
  struct alignas(64) ReaderSlot {
    /// 0 = quiescent, otherwise the global epoch announced at acquire.
    std::atomic<std::uint64_t> epoch{0};
  };

  struct Retired {
    std::unique_ptr<const TableSnapshot> snapshot;
    std::uint64_t retire_epoch = 0;  ///< epoch at the moment of retirement
  };

  void release(int slot) noexcept;
  [[nodiscard]] bool drained(std::uint64_t retire_epoch) const noexcept;

  std::vector<ReaderSlot> slots_;
  std::atomic<const TableSnapshot*> current_{nullptr};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> reclaimed_{0};
  std::atomic<std::uint64_t> acquires_{0};

  mutable std::mutex retired_mu_;  ///< guards retired_ (writer + queries)
  std::vector<Retired> retired_;

  obs::Telemetry* telemetry_ = nullptr;
};

}  // namespace p4runpro::dp
