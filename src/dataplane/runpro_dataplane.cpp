#include "dataplane/runpro_dataplane.h"

#include <cassert>

#include "obs/telemetry.h"

namespace p4runpro::dp {

namespace {

/// Wires one pipeline's stages (master and shard pipes are built the same
/// way; only the master's blocks ever receive control writes).
struct WiredBlocks {
  std::shared_ptr<InitBlock> init;
  std::vector<std::shared_ptr<Rpb>> rpbs;
  std::shared_ptr<RecircBlock> recirc;
};

WiredBlocks wire_blocks(rmt::Pipeline& pipeline, const DataplaneSpec& spec) {
  WiredBlocks blocks;
  // The filtering tables sit in stage 0 alongside no RPB, so they get a
  // deeper TCAM share: program capacity must not be bottlenecked by
  // filters (the paper's lb capacity of ~2.8K programs needs > 2048
  // filter entries per parse path).
  blocks.init = std::make_shared<InitBlock>(spec.entries_per_rpb * 4);
  blocks.recirc = std::make_shared<RecircBlock>(spec.entries_per_rpb);

  std::vector<std::shared_ptr<Rpb>> ingress_rpbs;
  for (int i = 1; i <= spec.ingress_rpbs; ++i) {
    auto rpb = std::make_shared<Rpb>(i, /*ingress=*/true, spec.memory_per_rpb,
                                     spec.entries_per_rpb);
    rpb->set_stage_stats(&pipeline.stage_stats());
    blocks.rpbs.push_back(rpb);
    ingress_rpbs.push_back(std::move(rpb));
  }
  std::vector<std::shared_ptr<Rpb>> egress_rpbs;
  for (int i = 1; i <= spec.egress_rpbs; ++i) {
    auto rpb = std::make_shared<Rpb>(spec.ingress_rpbs + i, /*ingress=*/false,
                                     spec.memory_per_rpb, spec.entries_per_rpb);
    rpb->set_stage_stats(&pipeline.stage_stats());
    blocks.rpbs.push_back(rpb);
    egress_rpbs.push_back(std::move(rpb));
  }
  // The RPBs run through chain stages (one ingress, one egress): a chain
  // skips the whole block sequence for unclaimed packets and empty-table
  // stages for claimed ones, which is where the per-packet pass time goes
  // on a lightly-populated switch (see docs/PERFORMANCE.md).
  pipeline.add_ingress_stage(blocks.init);
  pipeline.add_ingress_stage(std::make_shared<RpbChain>(
      std::move(ingress_rpbs), &pipeline.stage_stats()));
  pipeline.add_ingress_stage(blocks.recirc);
  pipeline.add_egress_stage(std::make_shared<RpbChain>(
      std::move(egress_rpbs), &pipeline.stage_stats()));
  return blocks;
}

}  // namespace

RunproDataplane::RunproDataplane(DataplaneSpec spec, rmt::ParserConfig parser_config)
    : spec_(spec),
      parser_config_(parser_config),
      // The pipeline's recirculation allowance is a hardware property; the
      // compiler-facing R in the spec bounds *programs*, while the frame
      // tolerates one extra pass as headroom for misconfigured entries.
      pipeline_(std::move(parser_config), spec.max_recirculations + 1) {
  WiredBlocks blocks = wire_blocks(pipeline_, spec_);
  init_ = std::move(blocks.init);
  rpbs_ = std::move(blocks.rpbs);
  recirc_ = std::move(blocks.recirc);
}

RunproDataplane::PipeShard::PipeShard(const DataplaneSpec& spec,
                                      rmt::ParserConfig parser_config)
    : pipeline(std::move(parser_config), spec.max_recirculations + 1) {
  WiredBlocks blocks = wire_blocks(pipeline, spec);
  init = std::move(blocks.init);
  rpbs = std::move(blocks.rpbs);
  recirc = std::move(blocks.recirc);
}

void RunproDataplane::PipeShard::bind(const TableSnapshot& snap) {
  init->bind_tables(&snap.filters);
  for (std::size_t i = 0; i < rpbs.size(); ++i) {
    rpbs[i]->bind_table(&snap.rpb_tables[i], snap.epoch);
  }
  recirc->bind_table(&snap.recirc);
  // The observation stamp travels inside the snapshot; mirror it into this
  // pipe so PacketObservation::table_trace names the snapshot the batch
  // actually matched against (never the master's concurrently-moving
  // members).
  pipeline.set_table_stamp(snap.table_trace, snap.table_generation);
}

void RunproDataplane::enable_sharding(int shards) {
  assert(shards >= 1);
  disable_sharding();
  hub_ = std::make_unique<SnapshotHub>(shards);
  if (telemetry_ != nullptr) hub_->attach_telemetry(telemetry_);
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    auto shard = std::make_unique<PipeShard>(spec_, parser_config_);
    // Pipe-local frame config mirrors the master at enable time (these are
    // provisioning-time knobs; changing them mid-traffic is not supported
    // on either path).
    shard->pipeline.set_qdepth(pipeline_.qdepth());
    shard->pipeline.set_cpu_queue_capacity(pipeline_.cpu_queue_capacity());
    for (const auto& [group, ports] : pipeline_.multicast_groups()) {
      shard->pipeline.set_multicast_group(group, ports);
    }
    shards_.push_back(std::move(shard));
  }
  publish_snapshot();
}

void RunproDataplane::disable_sharding() {
  if (hub_ == nullptr) return;
  hub_->synchronize();
  shards_.clear();
  hub_.reset();
}

rmt::Pipeline::BatchResult RunproDataplane::inject_batch_on(
    int shard, std::span<const rmt::Packet> pkts) {
  assert(hub_ != nullptr && shard >= 0 && shard < shard_count());
  PipeShard& pipe = *shards_[static_cast<std::size_t>(shard)];
  // Pin the current snapshot for the whole batch: every packet matches one
  // consistent table state, and the guard's epoch announcement defers the
  // reclamation of a snapshot superseded mid-batch (the grace period).
  const SnapshotHub::ReadGuard guard = hub_->acquire(shard);
  pipe.bind(*guard);
  rmt::Pipeline::BatchResult result = pipe.pipeline.inject_batch(pkts);
  result.snapshot_epoch = guard->epoch;
  result.table_trace = guard->table_trace;
  result.table_generation = guard->table_generation;
  return result;
}

void RunproDataplane::note_table_update(std::uint64_t trace) {
  pipeline_.note_table_update(trace);
  publish_snapshot();
}

void RunproDataplane::publish_snapshot() {
  if (hub_ == nullptr) return;
  hub_->publish(std::make_unique<TableSnapshot>(*init_, rpbs_, *recirc_,
                                                pipeline_.table_trace(),
                                                pipeline_.table_generation()));
}

std::uint64_t RunproDataplane::claimed_packets(ProgramId program) const {
  std::uint64_t total = init_->claimed_packets(program);
  for (const auto& shard : shards_) total += shard->init->claimed_packets(program);
  return total;
}

void RunproDataplane::clear_claim_counter(ProgramId program) {
  init_->clear_counter(program);
  for (const auto& shard : shards_) shard->init->clear_counter(program);
}

rmt::Pipeline& RunproDataplane::shard_pipeline(int shard) {
  assert(shard >= 0 && shard < shard_count());
  return shards_[static_cast<std::size_t>(shard)]->pipeline;
}

const InitBlock& RunproDataplane::shard_init(int shard) const {
  assert(shard >= 0 && shard < shard_count());
  return *shards_[static_cast<std::size_t>(shard)]->init;
}

void RunproDataplane::attach_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  pipeline_.attach_telemetry(telemetry);
  if (hub_ != nullptr) hub_->attach_telemetry(telemetry);
}

Result<WriteOp> RunproDataplane::apply(const WriteOp& op) {
  WriteOp inverse;
  inverse.program = op.program;
  switch (op.kind) {
    case WriteOp::Kind::AddRecirc: {
      auto handles = recirc_block().install(op.program, op.rounds);
      if (!handles.ok()) return handles.error();
      inverse.kind = WriteOp::Kind::DelRecirc;
      inverse.recirc_handles = std::move(handles).take();
      inverse.rounds = op.rounds;
      return inverse;
    }
    case WriteOp::Kind::AddRpbEntry: {
      auto handle = rpb(op.entry.rpb).table().insert(op.entry.keys,
                                                     op.entry.priority,
                                                     op.entry.action);
      if (!handle.ok()) return handle.error();
      inverse.kind = WriteOp::Kind::DelRpbEntry;
      inverse.entry = op.entry;
      inverse.rpb_handle = handle.value();
      return inverse;
    }
    case WriteOp::Kind::AddFilters: {
      auto handles = init_block().install(op.program, op.filters,
                                          op.filter_priority);
      if (!handles.ok()) return handles.error();
      inverse.kind = WriteOp::Kind::DelFilters;
      inverse.filter_handles = std::move(handles).take();
      inverse.filters = op.filters;
      inverse.filter_priority = op.filter_priority;
      return inverse;
    }
    case WriteOp::Kind::DelRecirc: {
      recirc_block().remove(op.recirc_handles);
      inverse.kind = WriteOp::Kind::AddRecirc;
      inverse.rounds = op.rounds;
      return inverse;
    }
    case WriteOp::Kind::DelRpbEntry: {
      const bool erased = rpb(op.entry.rpb).table().erase(op.rpb_handle);
      assert(erased);
      (void)erased;
      inverse.kind = WriteOp::Kind::AddRpbEntry;
      inverse.entry = op.entry;
      return inverse;
    }
    case WriteOp::Kind::DelFilters: {
      init_block().remove(op.filter_handles);
      inverse.kind = WriteOp::Kind::AddFilters;
      inverse.filters = op.filters;
      inverse.filter_priority = op.filter_priority;
      return inverse;
    }
    case WriteOp::Kind::WriteMemRange:
    case WriteOp::Kind::RestoreMemRange: {
      auto& memory = rpb(op.mem_rpb).memory();
      inverse.kind = WriteOp::Kind::RestoreMemRange;
      inverse.mem_rpb = op.mem_rpb;
      inverse.mem_base = op.mem_base;
      inverse.mem_size = op.mem_size;
      inverse.vmem = op.vmem;
      inverse.mem_words.reserve(op.mem_words.size());
      for (std::uint32_t a = 0; a < op.mem_words.size(); ++a) {
        inverse.mem_words.push_back(memory.read(op.mem_base + a));
        memory.write(op.mem_base + a, op.mem_words[a]);
      }
      // Register writes land in every pipe (pipe-local register memories;
      // the inverse captured the master bytes above, so a later rollback
      // re-broadcasts those — control values win over in-flight traffic).
      for (const auto& shard : shards_) {
        auto& shard_mem =
            shard->rpbs[static_cast<std::size_t>(op.mem_rpb - 1)]->memory();
        for (std::uint32_t a = 0; a < op.mem_words.size(); ++a) {
          shard_mem.write(op.mem_base + a, op.mem_words[a]);
        }
      }
      return inverse;
    }
    case WriteOp::Kind::ResetMemRange: {
      auto& memory = rpb(op.mem_rpb).memory();
      inverse.kind = WriteOp::Kind::RestoreMemRange;
      inverse.mem_rpb = op.mem_rpb;
      inverse.mem_base = op.mem_base;
      inverse.mem_size = op.mem_size;
      inverse.vmem = op.vmem;
      inverse.mem_words.reserve(op.mem_size);
      for (std::uint32_t a = 0; a < op.mem_size; ++a) {
        inverse.mem_words.push_back(memory.read(op.mem_base + a));
      }
      memory.reset_range(op.mem_base, op.mem_size);
      for (const auto& shard : shards_) {
        shard->rpbs[static_cast<std::size_t>(op.mem_rpb - 1)]->memory().reset_range(
            op.mem_base, op.mem_size);
      }
      return inverse;
    }
  }
  return Error{"unknown write op", "dataplane", ErrorCode::InvalidArgument};
}

WriteOp RunproDataplane::undo(const WriteOp& inverse) {
  auto redone = apply(inverse);
  // Journal invariant: an inverse op restores state that existed moments
  // ago (handles still free, capacity available), so it cannot fail.
  assert(redone.ok() && "rollback journal op failed");
  return std::move(redone).take();
}

Rpb& RunproDataplane::rpb(int physical_id) {
  assert(physical_id >= 1 && physical_id <= spec_.total_rpbs());
  return *rpbs_[static_cast<std::size_t>(physical_id - 1)];
}

const Rpb& RunproDataplane::rpb(int physical_id) const {
  assert(physical_id >= 1 && physical_id <= spec_.total_rpbs());
  return *rpbs_[static_cast<std::size_t>(physical_id - 1)];
}

}  // namespace p4runpro::dp
