#include "dataplane/runpro_dataplane.h"

#include <cassert>

namespace p4runpro::dp {

RunproDataplane::RunproDataplane(DataplaneSpec spec, rmt::ParserConfig parser_config)
    : spec_(spec),
      // The pipeline's recirculation allowance is a hardware property; the
      // compiler-facing R in the spec bounds *programs*, while the frame
      // tolerates one extra pass as headroom for misconfigured entries.
      pipeline_(std::move(parser_config), spec.max_recirculations + 1) {
  // The filtering tables sit in stage 0 alongside no RPB, so they get a
  // deeper TCAM share: program capacity must not be bottlenecked by
  // filters (the paper's lb capacity of ~2.8K programs needs > 2048
  // filter entries per parse path).
  init_ = std::make_shared<InitBlock>(spec_.entries_per_rpb * 4);
  recirc_ = std::make_shared<RecircBlock>(spec_.entries_per_rpb);

  std::vector<std::shared_ptr<Rpb>> ingress_rpbs;
  for (int i = 1; i <= spec_.ingress_rpbs; ++i) {
    auto rpb = std::make_shared<Rpb>(i, /*ingress=*/true, spec_.memory_per_rpb,
                                     spec_.entries_per_rpb);
    rpb->set_stage_stats(&pipeline_.stage_stats());
    rpbs_.push_back(rpb);
    ingress_rpbs.push_back(std::move(rpb));
  }
  std::vector<std::shared_ptr<Rpb>> egress_rpbs;
  for (int i = 1; i <= spec_.egress_rpbs; ++i) {
    auto rpb = std::make_shared<Rpb>(spec_.ingress_rpbs + i, /*ingress=*/false,
                                     spec_.memory_per_rpb, spec_.entries_per_rpb);
    rpb->set_stage_stats(&pipeline_.stage_stats());
    rpbs_.push_back(rpb);
    egress_rpbs.push_back(std::move(rpb));
  }
  // The RPBs run through chain stages (one ingress, one egress): a chain
  // skips the whole block sequence for unclaimed packets and empty-table
  // stages for claimed ones, which is where the per-packet pass time goes
  // on a lightly-populated switch (see docs/PERFORMANCE.md).
  pipeline_.add_ingress_stage(init_);
  pipeline_.add_ingress_stage(std::make_shared<RpbChain>(
      std::move(ingress_rpbs), &pipeline_.stage_stats()));
  pipeline_.add_ingress_stage(recirc_);
  pipeline_.add_egress_stage(std::make_shared<RpbChain>(
      std::move(egress_rpbs), &pipeline_.stage_stats()));
}

Result<WriteOp> RunproDataplane::apply(const WriteOp& op) {
  WriteOp inverse;
  inverse.program = op.program;
  switch (op.kind) {
    case WriteOp::Kind::AddRecirc: {
      auto handles = recirc_block().install(op.program, op.rounds);
      if (!handles.ok()) return handles.error();
      inverse.kind = WriteOp::Kind::DelRecirc;
      inverse.recirc_handles = std::move(handles).take();
      inverse.rounds = op.rounds;
      return inverse;
    }
    case WriteOp::Kind::AddRpbEntry: {
      auto handle = rpb(op.entry.rpb).table().insert(op.entry.keys,
                                                     op.entry.priority,
                                                     op.entry.action);
      if (!handle.ok()) return handle.error();
      inverse.kind = WriteOp::Kind::DelRpbEntry;
      inverse.entry = op.entry;
      inverse.rpb_handle = handle.value();
      return inverse;
    }
    case WriteOp::Kind::AddFilters: {
      auto handles = init_block().install(op.program, op.filters,
                                          op.filter_priority);
      if (!handles.ok()) return handles.error();
      inverse.kind = WriteOp::Kind::DelFilters;
      inverse.filter_handles = std::move(handles).take();
      inverse.filters = op.filters;
      inverse.filter_priority = op.filter_priority;
      return inverse;
    }
    case WriteOp::Kind::DelRecirc: {
      recirc_block().remove(op.recirc_handles);
      inverse.kind = WriteOp::Kind::AddRecirc;
      inverse.rounds = op.rounds;
      return inverse;
    }
    case WriteOp::Kind::DelRpbEntry: {
      const bool erased = rpb(op.entry.rpb).table().erase(op.rpb_handle);
      assert(erased);
      (void)erased;
      inverse.kind = WriteOp::Kind::AddRpbEntry;
      inverse.entry = op.entry;
      return inverse;
    }
    case WriteOp::Kind::DelFilters: {
      init_block().remove(op.filter_handles);
      inverse.kind = WriteOp::Kind::AddFilters;
      inverse.filters = op.filters;
      inverse.filter_priority = op.filter_priority;
      return inverse;
    }
    case WriteOp::Kind::WriteMemRange:
    case WriteOp::Kind::RestoreMemRange: {
      auto& memory = rpb(op.mem_rpb).memory();
      inverse.kind = WriteOp::Kind::RestoreMemRange;
      inverse.mem_rpb = op.mem_rpb;
      inverse.mem_base = op.mem_base;
      inverse.mem_size = op.mem_size;
      inverse.vmem = op.vmem;
      inverse.mem_words.reserve(op.mem_words.size());
      for (std::uint32_t a = 0; a < op.mem_words.size(); ++a) {
        inverse.mem_words.push_back(memory.read(op.mem_base + a));
        memory.write(op.mem_base + a, op.mem_words[a]);
      }
      return inverse;
    }
    case WriteOp::Kind::ResetMemRange: {
      auto& memory = rpb(op.mem_rpb).memory();
      inverse.kind = WriteOp::Kind::RestoreMemRange;
      inverse.mem_rpb = op.mem_rpb;
      inverse.mem_base = op.mem_base;
      inverse.mem_size = op.mem_size;
      inverse.vmem = op.vmem;
      inverse.mem_words.reserve(op.mem_size);
      for (std::uint32_t a = 0; a < op.mem_size; ++a) {
        inverse.mem_words.push_back(memory.read(op.mem_base + a));
      }
      memory.reset_range(op.mem_base, op.mem_size);
      return inverse;
    }
  }
  return Error{"unknown write op", "dataplane", ErrorCode::InvalidArgument};
}

WriteOp RunproDataplane::undo(const WriteOp& inverse) {
  auto redone = apply(inverse);
  // Journal invariant: an inverse op restores state that existed moments
  // ago (handles still free, capacity available), so it cannot fail.
  assert(redone.ok() && "rollback journal op failed");
  return std::move(redone).take();
}

Rpb& RunproDataplane::rpb(int physical_id) {
  assert(physical_id >= 1 && physical_id <= spec_.total_rpbs());
  return *rpbs_[static_cast<std::size_t>(physical_id - 1)];
}

const Rpb& RunproDataplane::rpb(int physical_id) const {
  assert(physical_id >= 1 && physical_id <= spec_.total_rpbs());
  return *rpbs_[static_cast<std::size_t>(physical_id - 1)];
}

}  // namespace p4runpro::dp
