#include "dataplane/runpro_dataplane.h"

#include <cassert>

namespace p4runpro::dp {

RunproDataplane::RunproDataplane(DataplaneSpec spec, rmt::ParserConfig parser_config)
    : spec_(spec),
      // The pipeline's recirculation allowance is a hardware property; the
      // compiler-facing R in the spec bounds *programs*, while the frame
      // tolerates one extra pass as headroom for misconfigured entries.
      pipeline_(std::move(parser_config), spec.max_recirculations + 1) {
  // The filtering tables sit in stage 0 alongside no RPB, so they get a
  // deeper TCAM share: program capacity must not be bottlenecked by
  // filters (the paper's lb capacity of ~2.8K programs needs > 2048
  // filter entries per parse path).
  init_ = std::make_shared<InitBlock>(spec_.entries_per_rpb * 4);
  recirc_ = std::make_shared<RecircBlock>(spec_.entries_per_rpb);

  std::vector<std::shared_ptr<Rpb>> ingress_rpbs;
  for (int i = 1; i <= spec_.ingress_rpbs; ++i) {
    auto rpb = std::make_shared<Rpb>(i, /*ingress=*/true, spec_.memory_per_rpb,
                                     spec_.entries_per_rpb);
    rpb->set_stage_stats(&pipeline_.stage_stats());
    rpbs_.push_back(rpb);
    ingress_rpbs.push_back(std::move(rpb));
  }
  std::vector<std::shared_ptr<Rpb>> egress_rpbs;
  for (int i = 1; i <= spec_.egress_rpbs; ++i) {
    auto rpb = std::make_shared<Rpb>(spec_.ingress_rpbs + i, /*ingress=*/false,
                                     spec_.memory_per_rpb, spec_.entries_per_rpb);
    rpb->set_stage_stats(&pipeline_.stage_stats());
    rpbs_.push_back(rpb);
    egress_rpbs.push_back(std::move(rpb));
  }
  // The RPBs run through chain stages (one ingress, one egress): a chain
  // skips the whole block sequence for unclaimed packets and empty-table
  // stages for claimed ones, which is where the per-packet pass time goes
  // on a lightly-populated switch (see docs/PERFORMANCE.md).
  pipeline_.add_ingress_stage(init_);
  pipeline_.add_ingress_stage(std::make_shared<RpbChain>(
      std::move(ingress_rpbs), &pipeline_.stage_stats()));
  pipeline_.add_ingress_stage(recirc_);
  pipeline_.add_egress_stage(std::make_shared<RpbChain>(
      std::move(egress_rpbs), &pipeline_.stage_stats()));
}

Rpb& RunproDataplane::rpb(int physical_id) {
  assert(physical_id >= 1 && physical_id <= spec_.total_rpbs());
  return *rpbs_[static_cast<std::size_t>(physical_id - 1)];
}

const Rpb& RunproDataplane::rpb(int physical_id) const {
  assert(physical_id >= 1 && physical_id <= spec_.total_rpbs());
  return *rpbs_[static_cast<std::size_t>(physical_id - 1)];
}

}  // namespace p4runpro::dp
