// Immutable copy of every compiled match table in the data plane, published
// to shard readers by the control plane (RCU-style; see SnapshotHub). A
// snapshot freezes:
//   - the five init-block filtering tables (packet -> program claim),
//   - every RPB's match-action table (compiled ternary buckets, priorities,
//     action bindings — the RpbAction payloads live inside the copied
//     entries, so cached action pointers stay valid for the snapshot's
//     whole grace period),
//   - the recirculation table,
//   - the table trace id / generation of the control operation that
//     produced it (satellite of note_table_update: the values travel with
//     the snapshot, so a packet observation always names the exact table
//     state it matched against, never a racy pipeline member).
// Register memory, counters and match caches are NOT part of a snapshot:
// they are per-shard mutable state (one StageMemory per pipe per stage).
//
// After construction a snapshot is never mutated; shard readers use the
// stats-sink lookup overloads (see rmt/tables.h) so concurrent reads are
// free of data races.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "dataplane/init_block.h"
#include "dataplane/recirc_block.h"
#include "dataplane/rpb.h"

namespace p4runpro::dp {

struct TableSnapshot {
  /// Deep-copies the master tables (the control plane's mutable copies)
  /// into frozen storage. `trace` / `generation` are the note_table_update
  /// values of the control operation publishing this snapshot.
  TableSnapshot(const InitBlock& init, const std::vector<std::shared_ptr<Rpb>>& rpbs,
                const RecircBlock& recirc, std::uint64_t trace,
                std::uint64_t generation);

  /// Unique, monotonically increasing publish id, assigned by the hub at
  /// publish time (0 = never published). Epochs never repeat, which is what
  /// makes them safe match-cache validity tags across snapshot swaps.
  std::uint64_t epoch = 0;

  /// Causal trace id of the control operation whose tables these are, and
  /// the table generation it bumped (see rmt::Pipeline::note_table_update).
  std::uint64_t table_trace = 0;
  std::uint64_t table_generation = 0;

  std::array<FilterTable, kNumParsePaths> filters;
  std::vector<RpbTable> rpb_tables;  ///< index i -> physical RPB id i+1
  rmt::TernaryTable<bool, 2> recirc;
};

}  // namespace p4runpro::dp
