// Recirculation block: last ingress stage. Rewrites the P4runpro header
// (registers, flags, addresses travel with the packet) and flags the packet
// for another pass when its program spans more logical RPBs than one
// physical circle provides (paper §4.1.3).
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "rmt/pipeline.h"
#include "rmt/tables.h"

namespace p4runpro::dp {

class RecircBlock final : public rmt::PipelineStage {
 public:
  explicit RecircBlock(std::uint32_t capacity);

  void process(rmt::Phv& phv) override;

  /// Install the recirculation entries for a program needing `rounds` total
  /// passes (rounds - 1 recirculations); one entry per non-final round.
  Result<std::vector<rmt::EntryHandle>> install(ProgramId program, int rounds);
  void remove(const std::vector<rmt::EntryHandle>& handles);

  [[nodiscard]] std::size_t entries() const noexcept { return table_.size(); }

  /// The master table (what snapshots copy from).
  [[nodiscard]] const rmt::TernaryTable<bool, 2>& table() const noexcept {
    return table_;
  }

  /// Redirect lookups to a frozen snapshot table (nullptr = back to the
  /// own/master table). Shard instances are re-bound at every batch start;
  /// bound lookups use a null stats sink so concurrent readers of one
  /// snapshot never write shared state.
  void bind_table(const rmt::TernaryTable<bool, 2>* table) noexcept {
    bound_ = table;
  }

 private:
  [[nodiscard]] const rmt::TernaryTable<bool, 2>& read_table() const noexcept {
    return bound_ != nullptr ? *bound_ : table_;
  }

  /// Keyed on (program_id, recirc_id); payload unused. Width fixed at
  /// compile time so entries keep their keys inline.
  rmt::TernaryTable<bool, 2> table_;
  const rmt::TernaryTable<bool, 2>* bound_ = nullptr;
};

}  // namespace p4runpro::dp
